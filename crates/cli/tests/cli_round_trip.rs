//! Integration tests for the CLI subcommands: build an engine from files,
//! run stats, and verify extraction output formats.

use aeetes_cli::commands;
use std::fs;
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aeetes-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn argv(parts: &[String]) -> Vec<String> {
    parts.to_vec()
}

fn s(x: &str) -> String {
    x.to_string()
}

#[test]
fn build_stats_extract_round_trip() {
    let dir = workdir("roundtrip");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "Purdue University USA\nUQ AU\nMIT\n").unwrap();
    fs::write(&rules, "UQ\tUniversity of Queensland\nAU\tAustralia\nMIT\tMassachusetts Institute of Technology\t0.95\n").unwrap();
    fs::write(&docs, "she visited purdue university usa then mit\nuniversity of queensland australia\n").unwrap();

    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .expect("build succeeds");
    assert!(engine.exists());
    assert!(fs::metadata(&engine).unwrap().len() > 32);

    commands::stats(&argv(&[s("--engine"), engine.display().to_string()])).expect("stats succeeds");

    for format in ["tsv", "jsonl"] {
        commands::extract(&argv(&[
            s("--engine"),
            engine.display().to_string(),
            s("--docs"),
            docs.display().to_string(),
            s("--tau"),
            s("0.8"),
            s("--best"),
            s("--format"),
            s(format),
        ]))
        .expect("extract succeeds");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metric_flag_accepted_and_validated() {
    let dir = workdir("metric");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "alpha beta\n").unwrap();
    fs::write(&rules, "alpha\ta1\n").unwrap();
    fs::write(&docs, "alpha beta here\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .unwrap();
    for metric in ["jaccard", "dice", "cosine", "overlap"] {
        commands::extract(&argv(&[
            s("--engine"),
            engine.display().to_string(),
            s("--docs"),
            docs.display().to_string(),
            s("--metric"),
            s(metric),
        ]))
        .unwrap_or_else(|e| panic!("metric {metric}: {e}"));
    }
    let err = commands::extract(&argv(&[
        s("--engine"),
        engine.display().to_string(),
        s("--docs"),
        docs.display().to_string(),
        s("--metric"),
        s("nope"),
    ]))
    .unwrap_err();
    assert!(err.contains("unknown metric"));
    let err = commands::extract(&argv(&[
        s("--engine"),
        engine.display().to_string(),
        s("--docs"),
        docs.display().to_string(),
        s("--tau"),
        s("1.5"),
    ]))
    .unwrap_err();
    assert!(err.contains("--tau"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn top_k_and_stream_flags_parse_and_validate() {
    let dir = workdir("topk");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "alpha beta gamma\nbeta gamma\n").unwrap();
    fs::write(&rules, "alpha\ta1\n").unwrap();
    fs::write(&docs, "alpha beta gamma and beta gamma again\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .unwrap();
    let base = [s("--engine"), engine.display().to_string(), s("--docs"), docs.display().to_string()];

    // Both `--top-k K` and `--top-k=K` spellings work.
    for spelling in [vec![s("--top-k"), s("2")], vec![s("--top-k=2")]] {
        let mut args = base.to_vec();
        args.extend(spelling);
        commands::extract(&argv(&args)).expect("--top-k extract succeeds");
    }

    // Bad values and near-miss flags are rejected with pointed messages.
    let mut args = base.to_vec();
    args.extend([s("--top-k"), s("0")]);
    assert!(commands::extract(&argv(&args)).unwrap_err().contains("--top-k"));
    let mut args = base.to_vec();
    args.extend([s("--top-k"), s("abc")]);
    assert!(commands::extract(&argv(&args)).unwrap_err().contains("--top-k"));
    let mut args = base.to_vec();
    args.extend([s("--top-q"), s("2")]);
    let err = commands::extract(&argv(&args)).unwrap_err();
    assert!(err.contains("unknown flag") && err.contains("--top-k"), "near-miss must name the real flag: {err}");

    // Exactness guard: --top-k refuses --best and extraction budgets.
    let mut args = base.to_vec();
    args.extend([s("--top-k"), s("2"), s("--best")]);
    assert!(commands::extract(&argv(&args)).unwrap_err().contains("--best"));
    let mut args = base.to_vec();
    args.extend([s("--top-k"), s("2"), s("--max-matches"), s("5")]);
    assert!(commands::extract(&argv(&args)).unwrap_err().contains("--top-k"));

    // --stream reads one document from stdin: batch-shaped flags are
    // rejected up front (before any stdin read).
    for extra in [vec![s("--docs"), docs.display().to_string()], vec![s("--top-k"), s("2")], vec![s("--best")]] {
        let mut args = vec![s("--engine"), engine.display().to_string(), s("--stream")];
        args.extend(extra.clone());
        let err = commands::extract(&argv(&args)).unwrap_err();
        assert!(err.contains("--stream"), "{extra:?}: {err}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors_for_missing_files_and_flags() {
    assert!(commands::build(&argv(&[s("--dict"), s("/nonexistent/x")])).is_err());
    let err = commands::extract(&argv(&[])).unwrap_err();
    assert!(err.contains("--engine"), "{err}");
    let err = commands::stats(&argv(&[s("--engine"), s("/nonexistent/engine")])).unwrap_err();
    assert!(err.contains("/nonexistent/engine"));
}

#[test]
fn demo_runs() {
    assert_eq!(commands::demo().expect("demo runs"), commands::EXIT_OK);
}

#[test]
fn build_is_atomic_and_leaves_no_temp_files() {
    let dir = workdir("atomic");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "a b\n").unwrap();
    fs::write(&rules, "a\talpha\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .expect("build succeeds");
    assert!(engine.exists());
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn budget_flags_yield_partial_exit_code() {
    let dir = workdir("budget");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "purdue university usa\nuq au\n").unwrap();
    fs::write(&rules, "uq\tuniversity of queensland\n").unwrap();
    fs::write(&docs, "purdue university usa and uq au\nuniversity of queensland au\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .unwrap();

    let base = [s("--engine"), engine.display().to_string(), s("--docs"), docs.display().to_string()];
    // Unconstrained run: complete results, exit 0.
    let code = commands::extract(&argv(&base)).expect("extract succeeds");
    assert_eq!(code, commands::EXIT_OK);
    // Generous budgets: still complete.
    let mut generous = base.to_vec();
    generous.extend([s("--timeout"), s("3600"), s("--max-candidates"), s("1000000")]);
    assert_eq!(commands::extract(&argv(&generous)).unwrap(), commands::EXIT_OK);
    // Zero candidate budget: every document truncates → exit 2.
    let mut strangled = base.to_vec();
    strangled.extend([s("--max-candidates"), s("0")]);
    assert_eq!(commands::extract(&argv(&strangled)).unwrap(), commands::EXIT_PARTIAL);
    // Same through the per-document metric-override path.
    let mut strangled_dice = base.to_vec();
    strangled_dice.extend([s("--max-candidates"), s("0"), s("--metric"), s("dice")]);
    assert_eq!(commands::extract(&argv(&strangled_dice)).unwrap(), commands::EXIT_PARTIAL);
    // Invalid budget values are failures, not silently ignored.
    let mut bad = base.to_vec();
    bad.extend([s("--timeout"), s("-1")]);
    assert!(commands::extract(&argv(&bad)).unwrap_err().contains("--timeout"));
    let mut bad = base.to_vec();
    bad.extend([s("--max-candidates"), s("many")]);
    assert!(commands::extract(&argv(&bad)).unwrap_err().contains("--max-candidates"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_rules_file_reports_line() {
    let dir = workdir("badrules");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    fs::write(&dict, "a b\n").unwrap();
    fs::write(&rules, "only-one-column\n").unwrap();
    let err = commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        dir.join("e.aeet").display().to_string(),
    ]))
    .unwrap_err();
    assert!(err.contains(":1:"), "line number in: {err}");
    let _ = fs::remove_dir_all(&dir);
}

/// Format version from an artifact's 8-byte header prefix.
fn artifact_version(path: &PathBuf) -> u32 {
    let bytes = fs::read(path).unwrap();
    assert_eq!(&bytes[..4], b"AEET");
    u32::from_le_bytes(bytes[4..8].try_into().unwrap())
}

#[test]
fn frozen_build_info_extract_and_compaction_round_trip() {
    let dir = workdir("frozen");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "Purdue University USA\nUQ AU\nMIT\n").unwrap();
    fs::write(&rules, "UQ\tUniversity of Queensland\nAU\tAustralia\nMIT\tMassachusetts Institute of Technology\t0.95\n").unwrap();
    fs::write(&docs, "she visited purdue university usa then mit\nuniversity of queensland australia\n").unwrap();

    // build --frozen writes a v5 artifact.
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
        s("--shards"),
        s("2"),
        s("--frozen"),
    ]))
    .expect("frozen build succeeds");
    assert_eq!(artifact_version(&engine), 5);

    // dict info reads it from the header (both renderings).
    commands::dict_cmd(&argv(&[s("info"), engine.display().to_string()])).expect("dict info succeeds");
    commands::dict_cmd(&argv(&[s("info"), engine.display().to_string(), s("--json")])).expect("dict info --json succeeds");

    // stats and extract auto-detect the frozen format.
    commands::stats(&argv(&[s("--engine"), engine.display().to_string()])).expect("stats over frozen succeeds");
    let code = commands::extract(&argv(&[
        s("--engine"),
        engine.display().to_string(),
        s("--docs"),
        docs.display().to_string(),
        s("--tau"),
        s("0.8"),
    ]))
    .expect("extract over frozen succeeds");
    assert_eq!(code, commands::EXIT_OK);

    // WAL compaction over a frozen source rewrites the artifact *frozen*
    // at the log's last generation, then resets the log.
    let wal = dir.join("deltas.wal");
    let mut log = aeetes_core::Wal::create(&wal, 1).expect("create wal");
    let delta = aeetes_cli::protocol::delta_value(&aeetes_shard::DictDelta {
        add_entities: vec!["University of Queensland Brisbane".into()],
        remove_entities: vec![],
        add_rules: vec![],
    });
    log.append(2, delta.to_string().as_bytes()).expect("append delta");
    log.sync().expect("sync wal");
    drop(log);

    commands::wal_cmd(&argv(&[s("compact"), s("--wal"), wal.display().to_string(), s("--engine"), engine.display().to_string()]))
        .expect("wal compact over frozen succeeds");
    assert_eq!(artifact_version(&engine), 5, "compaction must preserve the frozen format");
    let bytes = fs::read(&engine).unwrap();
    let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    assert_eq!(generation, 2, "compacted artifact must carry the log's last generation");

    // The compacted frozen artifact still serves extraction.
    assert_eq!(
        commands::extract(&argv(&[s("--engine"), engine.display().to_string(), s("--docs"), docs.display().to_string(),]))
            .expect("extract over compacted frozen artifact"),
        commands::EXIT_OK
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serve_frozen_flag_rejects_legacy_artifacts() {
    let dir = workdir("frozen-flag");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "a b\n").unwrap();
    fs::write(&rules, "a\talpha\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .unwrap();
    assert_eq!(artifact_version(&engine), 2);
    let err =
        commands::serve_cmd(&argv(&[s("--engine"), engine.display().to_string(), s("--frozen")])).expect_err("--frozen must reject a v2 artifact");
    assert!(err.contains("v5") && err.contains("v2"), "error names both versions: {err}");
    let _ = fs::remove_dir_all(&dir);
}
