//! Integration tests for the CLI subcommands: build an engine from files,
//! run stats, and verify extraction output formats.

use aeetes_cli::commands;
use std::fs;
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aeetes-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn argv(parts: &[String]) -> Vec<String> {
    parts.to_vec()
}

fn s(x: &str) -> String {
    x.to_string()
}

#[test]
fn build_stats_extract_round_trip() {
    let dir = workdir("roundtrip");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "Purdue University USA\nUQ AU\nMIT\n").unwrap();
    fs::write(&rules, "UQ\tUniversity of Queensland\nAU\tAustralia\nMIT\tMassachusetts Institute of Technology\t0.95\n")
        .unwrap();
    fs::write(&docs, "she visited purdue university usa then mit\nuniversity of queensland australia\n").unwrap();

    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .expect("build succeeds");
    assert!(engine.exists());
    assert!(fs::metadata(&engine).unwrap().len() > 32);

    commands::stats(&argv(&[s("--engine"), engine.display().to_string()])).expect("stats succeeds");

    for format in ["tsv", "jsonl"] {
        commands::extract(&argv(&[
            s("--engine"),
            engine.display().to_string(),
            s("--docs"),
            docs.display().to_string(),
            s("--tau"),
            s("0.8"),
            s("--best"),
            s("--format"),
            s(format),
        ]))
        .expect("extract succeeds");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metric_flag_accepted_and_validated() {
    let dir = workdir("metric");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    let docs = dir.join("docs.txt");
    let engine = dir.join("engine.aeet");
    fs::write(&dict, "alpha beta\n").unwrap();
    fs::write(&rules, "alpha\ta1\n").unwrap();
    fs::write(&docs, "alpha beta here\n").unwrap();
    commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        engine.display().to_string(),
    ]))
    .unwrap();
    for metric in ["jaccard", "dice", "cosine", "overlap"] {
        commands::extract(&argv(&[
            s("--engine"),
            engine.display().to_string(),
            s("--docs"),
            docs.display().to_string(),
            s("--metric"),
            s(metric),
        ]))
        .unwrap_or_else(|e| panic!("metric {metric}: {e}"));
    }
    let err = commands::extract(&argv(&[
        s("--engine"),
        engine.display().to_string(),
        s("--docs"),
        docs.display().to_string(),
        s("--metric"),
        s("nope"),
    ]))
    .unwrap_err();
    assert!(err.contains("unknown metric"));
    let err = commands::extract(&argv(&[
        s("--engine"),
        engine.display().to_string(),
        s("--docs"),
        docs.display().to_string(),
        s("--tau"),
        s("1.5"),
    ]))
    .unwrap_err();
    assert!(err.contains("--tau"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors_for_missing_files_and_flags() {
    assert!(commands::build(&argv(&[s("--dict"), s("/nonexistent/x")])).is_err());
    let err = commands::extract(&argv(&[])).unwrap_err();
    assert!(err.contains("--engine"), "{err}");
    let err = commands::stats(&argv(&[s("--engine"), s("/nonexistent/engine")])).unwrap_err();
    assert!(err.contains("/nonexistent/engine"));
}

#[test]
fn demo_runs() {
    commands::demo().expect("demo runs");
}

#[test]
fn malformed_rules_file_reports_line() {
    let dir = workdir("badrules");
    let dict = dir.join("dict.txt");
    let rules = dir.join("rules.tsv");
    fs::write(&dict, "a b\n").unwrap();
    fs::write(&rules, "only-one-column\n").unwrap();
    let err = commands::build(&argv(&[
        s("--dict"),
        dict.display().to_string(),
        s("--rules"),
        rules.display().to_string(),
        s("--out"),
        dir.join("e.aeet").display().to_string(),
    ]))
    .unwrap_err();
    assert!(err.contains(":1:"), "line number in: {err}");
    let _ = fs::remove_dir_all(&dir);
}
