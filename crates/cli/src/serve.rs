//! `aeetes serve` — a long-lived extraction server built for graceful
//! degradation.
//!
//! The engine is loaded once; requests arrive as newline-delimited JSON
//! (see [`crate::protocol`]) either on stdin (responses on stdout) or over
//! TCP (`--listen addr:port`, one protocol stream per connection).
//!
//! Robustness structure:
//!
//! * **Admission control** — extraction requests pass through a *bounded*
//!   queue (`--queue`). When it is full the request is answered immediately
//!   with `{"status":"shedding"}` instead of queueing unboundedly: memory
//!   stays flat under overload and clients learn to back off.
//! * **Per-request budgets** — every request runs under
//!   [`aeetes_core::ExtractLimits`]; client-requested values are clamped by
//!   server ceilings. Queue wait counts against the deadline, and a request
//!   that expires before a worker picks it up fails fast with `timeout`.
//! * **Panic isolation** — each extraction runs under `catch_unwind` (the
//!   same pattern as batch extraction), so a poisoned request answers
//!   `internal` while the server keeps serving.
//! * **Graceful drain** — `{"type":"shutdown"}` (or stdin EOF) stops
//!   admission, lets workers finish the queued backlog within the drain
//!   deadline, then fires a [`CancelToken`] that stops still-running
//!   extractions mid-document. Unprocessed leftovers are answered
//!   (`shedding`) rather than dropped, so counters always reconcile:
//!   every admitted extract line is answered exactly once as
//!   `served`, `shed`, or `failed`.
//! * **Hot reload** — `{"type":"reload"}` applies a dictionary delta
//!   through [`ShardedEngine::apply_update`]: only affected shards are
//!   rebuilt and the new generation is swapped in atomically. In-flight
//!   extractions keep their generation snapshot, so a reload drops zero
//!   requests; workers pick up the new generation on their next job.
//! * **Observability** — every request flushes its scratch-resident stage
//!   timings and work counters into a striped [`MetricRegistry`]; the
//!   registry is scraped via `{"type":"metrics"}` on the protocol stream or
//!   over plain HTTP from the `--metrics-listen` endpoint (`/metrics` in
//!   Prometheus text format, `/metrics.json` as JSON). Recording touches
//!   only per-thread-striped atomics, so telemetry adds no contention to
//!   the hot path.

use crate::protocol::{
    delta_value, error_line, ok_line, parse_delta, parse_request, Ceilings, ErrorCode, ExtractRequest, Reject, ReloadRequest, Request, StreamRequest,
    StreamVerb,
};
use aeetes_core::{select_top_k, suppress_overlaps, CancelToken, ExtractBackend, ExtractLimits, ExtractScratch, Match, Stage, Wal};
use aeetes_obs::{Counter, ExtractCounts, ExtractMetrics, Gauge, Histogram, MetricRegistry, StreamMetrics, WalMetrics};
use aeetes_pool::Pool;
use aeetes_shard::{DictDelta, Generation, RuleDelta, ShardedEngine};
use aeetes_stream::{StreamExtractor, StreamMatch};
use aeetes_text::{Document, EntityId, Interner, Tokenizer};
use serde_json::{json, Number, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one `serve` run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `None`: stdin/stdout mode. `Some(addr)`: TCP listener mode.
    pub listen: Option<String>,
    /// `Some(addr)`: serve `/metrics` (Prometheus text) and `/metrics.json`
    /// over HTTP on this address, in either transport mode.
    pub metrics_listen: Option<String>,
    /// Extraction worker threads — the size of the process-wide
    /// [`Pool`], shared with batch extraction and the sharded engine's
    /// fan-out (first configuration wins for the whole process).
    pub workers: usize,
    /// Bounded admission capacity; beyond it requests are shed.
    pub queue: usize,
    /// Request ceilings (doc size, deadline, match/candidate caps).
    pub ceilings: Ceilings,
    /// How long a drain may take before in-flight work is cancelled.
    pub drain: Duration,
    /// Per-connection idle read timeout (TCP mode): a connection that
    /// completes no request line for this long is closed, so a silent peer
    /// cannot pin a handler thread forever. `Duration::ZERO` disables.
    /// Slow-trickle (slowloris) peers idle out too: only *complete* lines
    /// reset the clock.
    pub idle_timeout: Duration,
    /// Cap on concurrently open protocol connections (TCP mode). A
    /// connection over the cap is answered with one `shedding` error line
    /// and closed — bounded handler threads, flat memory under a connection
    /// flood. `0` means 1.
    pub max_conns: usize,
    /// `Some(path)`: write-ahead log for dictionary deltas. Every activated
    /// delta is appended and fsynced *before* its `ok` ack, and on startup
    /// the log's committed suffix is replayed over the loaded artifact, so
    /// a crash (even SIGKILL mid-reload) never loses an acknowledged
    /// generation. `None`: reloads are memory-only, as before.
    pub wal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: None,
            metrics_listen: None,
            workers: 4,
            queue: 64,
            ceilings: Ceilings::default(),
            drain: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            max_conns: 1024,
            wal: None,
        }
    }
}

/// Every metric handle the server records into, pre-registered in one
/// [`MetricRegistry`] so the request path never touches the registry lock.
/// The served/shed/failed/control counters partition request outcomes the
/// same way the old atomic counters did: every admitted extract line lands
/// in exactly one of `served` / `shed` / `failed`.
struct ServeMetrics {
    registry: Arc<MetricRegistry>,
    /// Per-stage duration histograms + extraction work counters.
    extract: ExtractMetrics,
    /// `aeetes_request_duration_seconds`: end-to-end served-extract latency
    /// (replaces the old `LatencyRing`; the stats reply quantiles come from
    /// its merged buckets).
    request_duration: Arc<Histogram>,
    served: Arc<Counter>,
    shed: Arc<Counter>,
    failed: Arc<Counter>,
    control: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    generation: Arc<Gauge>,
    generation_swaps: Arc<Counter>,
    uptime: Arc<Gauge>,
    conns: Arc<Gauge>,
    conns_rejected: Arc<Counter>,
    idle_closed: Arc<Counter>,
    /// The `aeetes_wal_*` family (registered even without `--wal`, so the
    /// scrape shape is stable; all zeros when no log is attached).
    wal: WalMetrics,
    /// The `aeetes_stream*` family: open-stream gauge, chunk/emission
    /// counters, carried-byte gauge, flush latency.
    stream: StreamMetrics,
    /// Shard-counter values already pushed into the per-shard counter
    /// families, so a scrape increments each by its delta (the engine's
    /// shard counters are cumulative; obs counters only go up).
    shard_last: Mutex<Vec<[u64; 3]>>,
    /// Sequential/fan-out routing decisions (same handles the pool's
    /// [`aeetes_obs::PoolMetrics`] registers; the registry dedupes by
    /// name), advanced by delta at scrape time from the engine lineage's
    /// cumulative counters.
    route_sequential: Arc<Counter>,
    route_fanout: Arc<Counter>,
    routing_last: Mutex<(u64, u64)>,
}

impl ServeMetrics {
    fn register() -> Self {
        let registry = Arc::new(MetricRegistry::new());
        let outcome = |o| registry.counter_with("aeetes_requests_total", "Protocol requests by outcome", &[("outcome", o)]);
        ServeMetrics {
            extract: ExtractMetrics::register(&registry),
            request_duration: registry.histogram("aeetes_request_duration_seconds", "End-to-end latency of served extract requests"),
            served: outcome("served"),
            shed: outcome("shed"),
            failed: outcome("failed"),
            control: outcome("control"),
            queue_depth: registry.gauge("aeetes_queue_depth", "Extract requests waiting in the admission queue"),
            in_flight: registry.gauge("aeetes_in_flight", "Extractions currently running"),
            generation: registry.gauge("aeetes_generation_id", "Engine generation currently serving"),
            generation_swaps: registry.counter("aeetes_generation_swaps_total", "Successful hot-reload generation swaps"),
            uptime: registry.gauge("aeetes_uptime_seconds", "Seconds since the server started"),
            conns: registry.gauge("aeetes_connections", "Protocol connections currently open"),
            conns_rejected: registry.counter("aeetes_conns_rejected_total", "Connections refused by the --max-conns cap"),
            idle_closed: registry.counter("aeetes_idle_closed_total", "Connections closed by the per-connection idle read timeout"),
            wal: WalMetrics::register(&registry),
            stream: StreamMetrics::register(&registry),
            shard_last: Mutex::new(Vec::new()),
            route_sequential: registry
                .counter("aeetes_pool_route_sequential_total", "Sharded extractions run shard-sequentially on the calling thread"),
            route_fanout: registry.counter("aeetes_pool_route_fanout_total", "Sharded extractions fanned out across the worker pool"),
            routing_last: Mutex::new((0, 0)),
            registry,
        }
    }
}

/// State shared by acceptor, connection readers, and workers.
struct Shared {
    /// The sharded engine. Extraction snapshots a generation per job;
    /// reload swaps a new generation in behind the epoch pointer without
    /// touching requests already running against the old one.
    engine: ShardedEngine,
    tokenizer: Tokenizer,
    ceilings: Ceilings,
    /// See [`ServeOptions::idle_timeout`]; `ZERO` disables.
    idle_timeout: Duration,
    /// See [`ServeOptions::max_conns`].
    max_conns: usize,
    metrics: ServeMetrics,
    start: Instant,
    /// Extract jobs admitted (queued or running) but not yet answered.
    /// Drain completes when this returns to zero — every admitted line is
    /// answered exactly once.
    queued: AtomicI64,
    /// Admission cap on `queued`: `--queue` waiting slots plus one running
    /// slot per pool worker (matching the old bounded-channel capacity,
    /// where workers held jobs outside the queue while running them).
    queue_cap: i64,
    /// Process-unique sequence number of this `serve` run, keying the pool
    /// workers' thread-local interner caches.
    serve_seq: u64,
    /// Set once drain begins: admission refuses new extract work.
    draining: AtomicBool,
    /// Fired when the drain deadline passes: stops in-flight extractions
    /// mid-document (threaded into the engine's budget sentinel).
    cancel: CancelToken,
    /// The delta write-ahead log (`--wal`). The mutex serializes appends;
    /// ordering against the engine's generation counter is provided by
    /// `reload_serial`, which every reload-family request holds end to end.
    wal: Option<Mutex<Wal>>,
    /// Latched on the first failed append/sync: further reload-family
    /// requests are rejected with a structured error (durability can no
    /// longer be promised) while extraction continues unaffected.
    wal_failed: AtomicBool,
    /// The delta body of the most recent successful `prepare`, keyed by its
    /// prepared generation id, stashed so `activate` can log it — the WAL
    /// records *activated* deltas, and activation is when the two-phase
    /// path commits.
    prepared_delta: Mutex<Option<(u64, Vec<u8>)>>,
    /// Serializes reload/prepare/activate across connections so WAL record
    /// generations are appended in the same order the engine assigns them.
    /// Control-plane only; the extract path never touches it.
    reload_serial: Mutex<()>,
}

impl Shared {
    fn stats_value(&self) -> Value {
        let m = &self.metrics;
        let samples = m.request_duration.count();
        // Fewer than two samples is not a distribution: report `null`, not
        // a misleading 0 (a client averaging quantiles must skip it).
        let quantile = |q| {
            if samples < 2 {
                Value::Null
            } else {
                m.request_duration.quantile_nanos(q).map_or(Value::Null, |n| Value::Number(Number::U64(n / 1_000)))
            }
        };
        let generation = self.engine.snapshot();
        let shards: Vec<Value> = generation
            .shard_stats()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                json!({
                    "shard": i,
                    "entities": s.entities,
                    "variants": s.variants,
                    "served": s.served,
                    "candidates": s.candidates,
                    "build_us": s.build_nanos / 1_000,
                    "extract_us": s.extract_nanos / 1_000,
                })
            })
            .collect();
        json!({
            "uptime_ms": self.start.elapsed().as_millis() as u64,
            "generation": generation.id(),
            "pending_generation": self.engine.pending_generation(),
            "shards": shards,
            "connections": self.metrics.conns.value(),
            "served": m.served.value(),
            "shed": m.shed.value(),
            "failed": m.failed.value(),
            "control": m.control.value(),
            "queue_depth": m.queue_depth.value(),
            "in_flight": m.in_flight.value(),
            "streams_open": m.stream.open.value(),
            "stream_carried_bytes": m.stream.carried_bytes.value(),
            "latency_p50_us": quantile(0.50),
            "latency_p99_us": quantile(0.99),
            "latency_samples": samples,
            "draining": self.draining.load(Ordering::Relaxed),
        })
    }

    /// Refreshes scrape-time metrics: uptime, generation id, and the
    /// per-shard labeled families (registered lazily per shard id, advanced
    /// by the delta since the previous scrape). Runs on the scrape path
    /// only — the request hot path never calls this.
    fn refresh_scrape_metrics(&self) {
        let m = &self.metrics;
        m.uptime.set(self.start.elapsed().as_secs().min(i64::MAX as u64) as i64);
        let generation = self.engine.snapshot();
        m.generation.set(generation.id().min(i64::MAX as u64) as i64);
        let stats = generation.shard_stats();
        let mut last = m.shard_last.lock().expect("shard metric state");
        if last.len() != stats.len() {
            last.clear();
            last.resize(stats.len(), [0; 3]);
        }
        // Routing decisions are cumulative on the engine lineage; push the
        // delta since the previous scrape into the counter family the pool
        // registered.
        let (seq, fan) = generation.routing_stats();
        let mut routing_last = m.routing_last.lock().expect("routing metric state");
        m.route_sequential.inc(seq.saturating_sub(routing_last.0));
        m.route_fanout.inc(fan.saturating_sub(routing_last.1));
        *routing_last = (seq, fan);
        drop(routing_last);
        for (i, s) in stats.iter().enumerate() {
            let shard_id = i.to_string();
            let labels = [("shard", shard_id.as_str())];
            let cur = [s.served, s.candidates, s.extract_nanos];
            let handles = [
                m.registry.counter_with("aeetes_shard_served_total", "Extractions answered, per shard", &labels),
                m.registry
                    .counter_with("aeetes_shard_candidates_total", "Candidate pairs generated, per shard", &labels),
                m.registry
                    .counter_with("aeetes_shard_extract_nanos_total", "Cumulative extraction wall time in nanoseconds, per shard", &labels),
            ];
            for (handle, (cur, prev)) in handles.iter().zip(cur.iter().zip(last[i].iter())) {
                handle.inc(cur.saturating_sub(*prev));
            }
            last[i] = cur;
            m.registry
                .gauge_with("aeetes_shard_build_nanos", "Index build wall time of the shard's current generation", &labels)
                .set(s.build_nanos.min(i64::MAX as u64) as i64);
        }
    }

    /// Commits one activated delta to the WAL: append, then fsync, then —
    /// and only then — may the caller ack. A failure latches `wal_failed`
    /// (the delta stays applied in memory but is reported as *not*
    /// acknowledged, so a restart legitimately comes back without it).
    /// No-op without `--wal`.
    fn wal_commit(&self, generation: u64, payload: &[u8]) -> Result<(), String> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let m = &self.metrics.wal;
        let mut wal = wal.lock().unwrap_or_else(|p| p.into_inner());
        let result = (|| {
            wal.append(generation, payload)?;
            let sync_started = Instant::now();
            wal.sync()?;
            m.fsync_nanos.observe_nanos(u64::try_from(sync_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            Ok::<(), aeetes_core::WalError>(())
        })();
        match result {
            Ok(()) => {
                m.appends.inc(1);
                m.append_bytes.inc(payload.len() as u64);
                m.records.set(wal.record_count().min(i64::MAX as u64) as i64);
                m.bytes.set(wal.len_bytes().min(i64::MAX as u64) as i64);
                Ok(())
            }
            Err(e) => {
                m.append_failures.inc(1);
                self.wal_failed.store(true, Ordering::Relaxed);
                Err(format!("wal append for generation {generation} failed: {e}"))
            }
        }
    }

    /// The structured rejection for reload-family requests once the WAL has
    /// failed: durability can no longer be promised, so no further delta is
    /// accepted, while extraction continues on the current generation.
    fn wal_poisoned(&self) -> bool {
        self.wal.is_some() && self.wal_failed.load(Ordering::Relaxed)
    }

    /// Renders the full registry (after a scrape refresh) as Prometheus
    /// text or the JSON export.
    fn metrics_body(&self, as_json: bool) -> String {
        self.refresh_scrape_metrics();
        let snapshot = self.metrics.registry.snapshot();
        if as_json {
            aeetes_obs::json(&snapshot)
        } else {
            aeetes_obs::prometheus_text(&snapshot)
        }
    }
}

/// Where a response line goes: the requesting connection's write half (or
/// stdout), serialized by a mutex so concurrent workers never interleave
/// partial lines.
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// Writes one response line. Write errors are swallowed: the client may
/// have hung up, which must never take the server down.
fn respond(sink: &Sink, line: &str) {
    let mut w = match sink.lock() {
        Ok(w) => w,
        Err(poisoned) => poisoned.into_inner(), // a panicked writer still has a usable fd
    };
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// A queued unit of extraction work.
struct Job {
    req: ExtractRequest,
    /// Absolute expiry (admission time + effective deadline). Checked again
    /// at dequeue so queue wait counts against the request's budget.
    expires: Instant,
    sink: Sink,
}

/// Per-worker parsing state that persists across jobs. The pool's workers
/// are process-wide and outlive any one `serve` run, so this lives in a
/// thread-local rather than a worker loop's stack frame.
#[derive(Default)]
struct WorkerCtx {
    /// `(serve run, generation)` the cached interner was cloned from.
    key: (u64, u64),
    growth_cap: usize,
    interner: Interner,
}

thread_local! {
    static WORKER_CTX: RefCell<WorkerCtx> = RefCell::new(WorkerCtx::default());
}

/// One extraction job on a pool worker: runs with the worker's resident
/// scratch (handed in by the pool) and this thread's parsing context.
fn worker_job(shared: &Shared, scratch: &mut ExtractScratch, job: Job) {
    // The drain deadline passed while this job was still queued: answer it
    // (`shedding`) rather than drop it, so counters always reconcile.
    if shared.draining.load(Ordering::Relaxed) && shared.cancel.is_cancelled() {
        shared.metrics.shed.inc(1);
        respond(
            &job.sink,
            &error_line(&Reject {
                id: job.req.id,
                code: ErrorCode::Shedding,
                message: "server drained before this request ran".into(),
            }),
        );
        return;
    }
    let generation = shared.engine.snapshot();
    WORKER_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let ctx = &mut *ctx;
        // Each worker parses documents against a clone of the current
        // generation's interner. The clone is refreshed whenever the
        // generation changes — a reload interns the delta's tokens, and
        // document tokens interned locally against the old snapshot would
        // collide with them — and whenever local growth passes the cap, so
        // a long-lived server's interner cannot grow without bound on
        // adversarial vocabulary. The key carries the serve-run sequence
        // too: pool workers are process-wide, so a later `serve` run with
        // a different engine must not reuse the previous engine's tokens.
        let key = (shared.serve_seq, generation.id());
        if key != ctx.key || ctx.interner.len() > ctx.growth_cap {
            ctx.interner = generation.interner().clone();
            ctx.growth_cap = ctx.interner.len() + 100_000;
            ctx.key = key;
        }
        run_job(shared, &generation, &mut ctx.interner, scratch, job);
    });
}

fn run_job(shared: &Shared, generation: &Generation, interner: &mut Interner, scratch: &mut ExtractScratch, job: Job) {
    let now = Instant::now();
    if now >= job.expires {
        let reject = Reject {
            id: job.req.id,
            code: ErrorCode::Timeout,
            message: "deadline expired while queued".into(),
        };
        shared.metrics.failed.inc(1);
        respond(&job.sink, &error_line(&reject));
        return;
    }
    shared.metrics.in_flight.add(1);
    // Whatever deadline remains after queueing is the extraction budget.
    let limits = ExtractLimits { deadline: Some(job.expires - now), ..job.req.limits };
    let started = Instant::now();
    // The generation is immutable and the interner and scratch are
    // worker-local, so a caught panic cannot corrupt state shared with
    // other requests (the scratch is reset at the start of every pass).
    // Holding the `Arc<Generation>` for the whole job means a concurrent
    // reload cannot pull the dictionary out from under this extraction.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let parse_started = Instant::now();
        let doc = Document::parse(&job.req.doc, &shared.tokenizer, interner);
        let tokenize_nanos = u64::try_from(parse_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let out = generation.extract_scratched(&doc, job.req.tau, &limits, Some(&shared.cancel), scratch);
        let truncated = out.truncated;
        let stats = out.stats;
        // Tokenization happens outside the engine, so its stage is recorded
        // here, next to the engine-resident slots the extraction filled.
        let mut stages = out.stages;
        stages.record(Stage::Tokenize, tokenize_nanos);
        let suppressed;
        let matches: &[Match] = if job.req.best {
            suppressed = suppress_overlaps(out.matches.to_vec());
            &suppressed
        } else {
            out.matches
        };
        // `top_k` post-filters whatever survived `best`, reordering by
        // score (best first) — the same contract as `extract --top-k`.
        let top;
        let matches: &[Match] = match job.req.top_k {
            Some(k) => {
                let mut kept = matches.to_vec();
                select_top_k(&mut kept, k);
                top = kept;
                &top
            }
            None => matches,
        };
        let rendered: Vec<Value> = matches
            .iter()
            .map(|m| {
                json!({
                    "start": m.span.start,
                    "len": m.span.len,
                    "score": m.score,
                    "entity": m.entity.0,
                    "entity_text": generation.dictionary().record(m.entity).raw,
                    "matched_text": doc.text_of(m.span).unwrap_or_default(),
                })
            })
            .collect();
        (rendered, truncated, stats, stages)
    }));
    shared.metrics.in_flight.add(-1);
    match outcome {
        Ok((matches, truncated, stats, stages)) => {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.request_duration.observe_nanos(nanos);
            let counts = ExtractCounts {
                accessed_entries: stats.accessed_entries,
                candidates: stats.candidates,
                verifications: stats.verifications,
                matches: stats.matches,
            };
            shared.metrics.extract.observe(&stages, &counts, truncated);
            shared.metrics.served.inc(1);
            respond(&job.sink, &ok_line(&job.req.id, Value::Array(matches), truncated));
        }
        Err(_) => {
            shared.metrics.failed.inc(1);
            let reject = Reject {
                id: job.req.id,
                code: ErrorCode::Internal,
                message: "extraction panicked; fault isolated to this request".into(),
            };
            respond(&job.sink, &error_line(&reject));
        }
    }
}

/// Rejection message once the WAL has latched failed: the server keeps
/// extracting on its current generation but accepts no further deltas it
/// could not make durable.
const WAL_POISONED_MSG: &str =
    "write-ahead log failed on an earlier commit; reloads are disabled (extraction continues; restart with a healthy --wal path)";

/// Lowers a reload/prepare request into the engine's delta type, keeping
/// the correlation id for the response.
fn delta_of(req: ReloadRequest) -> (Value, DictDelta) {
    let delta = DictDelta {
        add_entities: req.add_entities,
        remove_entities: req.remove_entities.into_iter().map(EntityId).collect(),
        add_rules: req.add_rules.into_iter().map(|(lhs, rhs, weight)| RuleDelta { lhs, rhs, weight }).collect(),
    };
    (req.id, delta)
}

/// One open stream of a connection: the incremental extractor, the engine
/// generation pinned at `open` (a hot reload never disturbs a stream
/// mid-document), and a stream-local interner clone for parsing chunks.
struct StreamState {
    extractor: StreamExtractor,
    generation: Arc<Generation>,
    interner: Interner,
    /// `carried_bytes()` after the last verb, so the global carried-bytes
    /// gauge advances by delta.
    last_carried: i64,
}

/// All streams of one connection, keyed by the client-chosen id.
///
/// Owns the exactly-once close guarantee: every stream opened on the
/// connection is answered with exactly one `closed` event — by an explicit
/// `close` verb, or by the drop path when the connection ends for any
/// other reason (EOF, read error, idle timeout, server drain, or a panic
/// escaping the handler). Each open stream also holds one admission slot
/// (`Shared::queued`), so a drain waits for streams to close and a
/// connection cannot open unbounded per-stream buffers.
struct ConnStreams {
    shared: Arc<Shared>,
    sink: Sink,
    streams: HashMap<u64, StreamState>,
}

/// Renders one stream match for the wire. `start`/`len` are global token
/// coordinates over the whole stream; `byte_start`/`byte_end` index the
/// decoded byte stream (for valid UTF-8 input, the concatenated chunks).
fn stream_match_value(m: &StreamMatch, generation: &Generation) -> Value {
    json!({
        "start": m.start,
        "len": m.len,
        "score": m.score,
        "entity": m.entity.0,
        "entity_text": generation.dictionary().record(m.entity).raw,
        "byte_start": m.byte_start,
        "byte_end": m.byte_end,
    })
}

impl ConnStreams {
    fn new(shared: Arc<Shared>, sink: Sink) -> Self {
        ConnStreams { shared, sink, streams: HashMap::new() }
    }

    /// Handles one parsed stream request, answering exactly one line (plus
    /// the separate `closed` event line for `close`).
    fn handle(&mut self, req: StreamRequest) {
        let StreamRequest { id, stream, verb } = req;
        let m = &self.shared.metrics;
        match verb {
            StreamVerb::Open { tau } => {
                if self.shared.draining.load(Ordering::Relaxed) {
                    m.shed.inc(1);
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::Shedding, message: "server is draining".into() }));
                    return;
                }
                if self.streams.contains_key(&stream) {
                    m.failed.inc(1);
                    let msg = format!("stream {stream} is already open on this connection");
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: msg }));
                    return;
                }
                // An open stream holds one admission slot until it closes:
                // per-stream buffering is counted against the same bounded
                // capacity as queued extract requests.
                if self.shared.queued.fetch_add(1, Ordering::SeqCst) >= self.shared.queue_cap {
                    self.shared.queued.fetch_sub(1, Ordering::SeqCst);
                    m.shed.inc(1);
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::Shedding, message: "request queue is full".into() }));
                    return;
                }
                let generation = self.shared.engine.snapshot();
                let state = StreamState {
                    extractor: StreamExtractor::new(&*generation, tau),
                    interner: generation.interner().clone(),
                    generation,
                    last_carried: 0,
                };
                let generation_id = state.generation.id();
                self.streams.insert(stream, state);
                m.stream.open.add(1);
                m.stream.opened.inc(1);
                m.control.inc(1);
                respond(
                    &self.sink,
                    &json!({"id": id, "status": "ok", "stream": stream, "event": "opened", "generation": generation_id}).to_string(),
                );
            }
            StreamVerb::Feed { text } => {
                let Some(state) = self.streams.get_mut(&stream) else {
                    m.failed.inc(1);
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: format!("stream {stream} is not open") }));
                    return;
                };
                let shared = &self.shared;
                // Same isolation contract as extract jobs: a panicking
                // chunk answers `internal` and force-closes only this
                // stream; the connection and its other streams survive.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let matches = state.extractor.feed(&*state.generation, &shared.tokenizer, &mut state.interner, text.as_bytes());
                    let rendered: Vec<Value> = matches.iter().map(|mm| stream_match_value(mm, &state.generation)).collect();
                    (rendered, matches.len() as u64, state.extractor.carried_tokens())
                }));
                match outcome {
                    Ok((rendered, emitted, carried_tokens)) => {
                        let carried = state.extractor.carried_bytes() as i64;
                        m.stream.observe_chunk(emitted, carried - state.last_carried);
                        state.last_carried = carried;
                        m.control.inc(1);
                        let line = json!({
                            "id": id,
                            "status": "ok",
                            "stream": stream,
                            "event": "matches",
                            "matches": rendered,
                            "carried_tokens": carried_tokens,
                        });
                        respond(&self.sink, &line.to_string());
                    }
                    Err(_) => {
                        m.failed.inc(1);
                        let msg = "stream feed panicked; fault isolated, stream closed".to_string();
                        respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: msg }));
                        // The extractor's carry state is suspect after a
                        // panic: close without flushing.
                        self.close_stream(stream, Value::Null, false, "error");
                    }
                }
            }
            StreamVerb::Flush => {
                let Some(state) = self.streams.get_mut(&stream) else {
                    m.failed.inc(1);
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: format!("stream {stream} is not open") }));
                    return;
                };
                let shared = &self.shared;
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let matches = state.extractor.finish(&*state.generation, &shared.tokenizer, &mut state.interner);
                    let rendered: Vec<Value> = matches.iter().map(|mm| stream_match_value(mm, &state.generation)).collect();
                    (rendered, matches.len() as u64)
                }));
                match outcome {
                    Ok((rendered, emitted)) => {
                        m.stream.flush_nanos.observe_nanos(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        let carried = state.extractor.carried_bytes() as i64;
                        m.stream.emitted.inc(emitted);
                        m.stream.carried_bytes.add(carried - state.last_carried);
                        state.last_carried = carried;
                        m.control.inc(1);
                        respond(
                            &self.sink,
                            &json!({"id": id, "status": "ok", "stream": stream, "event": "flushed", "matches": rendered}).to_string(),
                        );
                    }
                    Err(_) => {
                        m.failed.inc(1);
                        let msg = "stream flush panicked; fault isolated, stream closed".to_string();
                        respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: msg }));
                        self.close_stream(stream, Value::Null, false, "error");
                    }
                }
            }
            StreamVerb::Close => {
                if !self.streams.contains_key(&stream) {
                    m.failed.inc(1);
                    respond(&self.sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: format!("stream {stream} is not open") }));
                    return;
                }
                m.control.inc(1);
                self.close_stream(stream, id, true, "close");
            }
        }
    }

    /// Closes one stream: optionally flushes the tail, emits the single
    /// `closed` event (with any final matches), and releases the stream's
    /// admission slot and gauges. Removing the entry first makes the event
    /// unrepeatable — this is the exactly-once point.
    fn close_stream(&mut self, stream: u64, id: Value, flush: bool, reason: &str) {
        let Some(mut state) = self.streams.remove(&stream) else { return };
        let m = &self.shared.metrics;
        let shared = &self.shared;
        let rendered: Vec<Value> = if flush {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let matches = state.extractor.finish(&*state.generation, &shared.tokenizer, &mut state.interner);
                m.stream.emitted.inc(matches.len() as u64);
                matches.iter().map(|mm| stream_match_value(mm, &state.generation)).collect()
            }));
            m.stream.flush_nanos.observe_nanos(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            outcome.unwrap_or_default() // a panicking final flush still closes cleanly
        } else {
            Vec::new()
        };
        m.stream.carried_bytes.add(-state.last_carried);
        m.stream.open.add(-1);
        m.stream.closed.inc(1);
        self.shared.queued.fetch_sub(1, Ordering::SeqCst);
        let line = json!({
            "id": id,
            "status": "ok",
            "stream": stream,
            "event": "closed",
            "reason": reason,
            "matches": rendered,
        });
        respond(&self.sink, &line.to_string());
    }
}

impl Drop for ConnStreams {
    fn drop(&mut self) {
        let reason = if self.shared.draining.load(Ordering::Relaxed) {
            "drain"
        } else {
            "disconnect"
        };
        let open: Vec<u64> = self.streams.keys().copied().collect();
        for stream in open {
            // The peer may already be gone (`respond` swallows write
            // errors); what matters is that accounting releases and the
            // event is emitted exactly once even on abrupt ends.
            self.close_stream(stream, Value::Null, true, reason);
        }
    }
}

/// Outcome of reading one protocol line from a connection.
#[derive(Debug)]
enum LineRead {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// A line longer than the cap; the remainder was discarded up to the
    /// next newline so the stream stays in sync.
    Oversized,
    /// End of stream.
    Eof,
}

/// Incremental capped line reader. Never buffers more than `cap` bytes, so
/// a client streaming an endless line cannot balloon server memory, and
/// keeps partial-line progress across calls — a read timeout mid-line (the
/// drain poll on TCP connections) resumes exactly where it stopped instead
/// of corrupting the stream.
struct LineReader {
    cap: usize,
    buf: Vec<u8>,
    /// Inside an over-cap line, discarding bytes until the next newline.
    discarding: bool,
}

impl LineReader {
    fn new(cap: usize) -> Self {
        LineReader { cap, buf: Vec::new(), discarding: false }
    }

    /// Reads the next line. A final unterminated fragment (truncated line
    /// before EOF) is returned as a line so it still gets a (likely
    /// `bad_request`) response. `Err(TimedOut | WouldBlock)` is resumable.
    fn next_line(&mut self, reader: &mut impl BufRead) -> std::io::Result<LineRead> {
        loop {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                if self.discarding {
                    self.discarding = false;
                    return Ok(LineRead::Oversized);
                }
                return Ok(if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(std::mem::take(&mut self.buf))
                });
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            if self.discarding {
                match newline {
                    Some(pos) => {
                        reader.consume(pos + 1);
                        self.discarding = false;
                        return Ok(LineRead::Oversized);
                    }
                    None => {
                        let n = buf.len();
                        reader.consume(n);
                    }
                }
                continue;
            }
            match newline {
                Some(pos) => {
                    if self.buf.len() + pos <= self.cap {
                        self.buf.extend_from_slice(&buf[..pos]);
                        reader.consume(pos + 1);
                        return Ok(LineRead::Line(std::mem::take(&mut self.buf)));
                    }
                    reader.consume(pos + 1);
                    self.buf.clear();
                    return Ok(LineRead::Oversized);
                }
                None => {
                    let n = buf.len();
                    if self.buf.len() + n <= self.cap {
                        self.buf.extend_from_slice(buf);
                        reader.consume(n);
                    } else {
                        reader.consume(n);
                        self.buf.clear();
                        self.discarding = true;
                    }
                }
            }
        }
    }
}

/// Serves one protocol stream (a TCP connection or stdin): parses each
/// line, answers control requests inline, and hands extract requests to
/// the worker pool under the bounded admission counter. Returns `true`
/// when a `shutdown` request asked the whole server to drain.
fn serve_stream(shared: &Arc<Shared>, reader: &mut impl BufRead, sink: &Sink) -> bool {
    // JSON syntax + escaping around the document can roughly double it;
    // one extra KiB covers the envelope fields.
    let line_cap = shared.ceilings.max_doc_bytes.saturating_mul(2).saturating_add(1024);
    let mut lines = LineReader::new(line_cap);
    // Streams opened on this connection. Dropping this on ANY exit path —
    // EOF, read error, idle timeout, drain, shutdown — closes each open
    // stream with its single `closed` event and releases its admission
    // slot, so drains and disconnects answer in-flight streams exactly
    // once.
    let mut conn_streams = ConnStreams::new(Arc::clone(shared), Arc::clone(sink));
    // Only completed reads reset this clock, so a peer trickling one byte
    // per poll interval still idles out (see `ServeOptions::idle_timeout`).
    let mut last_activity = Instant::now();
    loop {
        let read = match lines.next_line(reader) {
            Ok(r) => r,
            // TCP connections carry a read timeout so idle clients cannot
            // hold up a drain indefinitely: poll the flag and resume.
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                if shared.draining.load(Ordering::Relaxed) {
                    return false;
                }
                if shared.idle_timeout > Duration::ZERO && last_activity.elapsed() >= shared.idle_timeout {
                    shared.metrics.idle_closed.inc(1);
                    return false;
                }
                continue;
            }
            Err(_) => return false, // connection died; nothing to answer
        };
        last_activity = Instant::now();
        let bytes = match read {
            LineRead::Eof => return false,
            LineRead::Oversized => {
                shared.metrics.failed.inc(1);
                let reject = Reject {
                    id: Value::Null,
                    code: ErrorCode::TooLarge,
                    message: format!("request line exceeds {line_cap} bytes"),
                };
                respond(sink, &error_line(&reject));
                continue;
            }
            LineRead::Line(bytes) => bytes,
        };
        let Ok(line) = std::str::from_utf8(&bytes) else {
            shared.metrics.failed.inc(1);
            respond(
                sink,
                &error_line(&Reject {
                    id: Value::Null,
                    code: ErrorCode::BadRequest,
                    message: "request line is not valid UTF-8".into(),
                }),
            );
            continue;
        };
        if line.trim().is_empty() {
            continue; // blank lines are NDJSON keep-alive noise, not requests
        }
        match parse_request(line, &shared.ceilings) {
            Err(reject) => {
                shared.metrics.failed.inc(1);
                respond(sink, &error_line(&reject));
            }
            Ok(Request::Health(id)) => {
                shared.metrics.control.inc(1);
                let draining = shared.draining.load(Ordering::Relaxed);
                let status = if draining { "draining" } else { "ok" };
                // Generation + draining ride along so a coordinator (or a
                // human) can tell "slow" from "going away" and "current"
                // from "behind the fleet" with one cheap probe.
                let line = json!({
                    "id": id,
                    "status": "ok",
                    "health": status,
                    "draining": draining,
                    "generation": shared.engine.generation_id(),
                    "open_streams": shared.metrics.stream.open.value(),
                    "stream_carried_bytes": shared.metrics.stream.carried_bytes.value(),
                });
                respond(sink, &line.to_string());
            }
            Ok(Request::Stats(id)) => {
                shared.metrics.control.inc(1);
                respond(sink, &json!({"id": id, "status": "ok", "stats": shared.stats_value()}).to_string());
            }
            Ok(Request::Metrics(id)) => {
                shared.metrics.control.inc(1);
                // The JSON export is rendered then re-parsed so it embeds as
                // a structured value, not a string (scrapes are rare; the
                // double pass is irrelevant).
                let metrics: Value = serde_json::from_str(&shared.metrics_body(true)).unwrap_or(Value::Null);
                respond(sink, &json!({"id": id, "status": "ok", "metrics": metrics}).to_string());
            }
            Ok(Request::Reload(req)) => {
                shared.metrics.control.inc(1);
                if shared.draining.load(Ordering::Relaxed) {
                    respond(sink, &error_line(&Reject { id: req.id, code: ErrorCode::Shedding, message: "server is draining".into() }));
                    continue;
                }
                let (id, delta) = delta_of(*req);
                if shared.wal_poisoned() {
                    respond(sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: WAL_POISONED_MSG.into() }));
                    continue;
                }
                // The rebuild runs on this connection's reader thread: other
                // connections keep extracting against the old generation
                // until the atomic swap inside `apply_update`. The serial
                // lock orders concurrent reloads so WAL records are appended
                // in generation order.
                let _serial = shared.reload_serial.lock().unwrap_or_else(|p| p.into_inner());
                match shared.engine.apply_update(&delta, &shared.tokenizer) {
                    Ok(generation) => {
                        // Durability before acknowledgement: the delta is
                        // fsynced into the WAL, and only then acked. On WAL
                        // failure the client gets an error — the new
                        // generation serves until the process dies, but a
                        // restart (correctly) comes back without it.
                        if let Err(e) = shared.wal_commit(generation.id(), delta_value(&delta).to_string().as_bytes()) {
                            respond(sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: e }));
                            continue;
                        }
                        shared.metrics.generation_swaps.inc(1);
                        shared.metrics.generation.set(generation.id().min(i64::MAX as u64) as i64);
                        let line = json!({
                            "id": id,
                            "status": "ok",
                            "generation": generation.id(),
                            "entities": generation.dictionary().len(),
                            "variants": generation.variants(),
                        });
                        respond(sink, &line.to_string());
                    }
                    Err(e) => {
                        respond(sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: format!("reload rejected: {e}") }));
                    }
                }
            }
            Ok(Request::Prepare(req)) => {
                shared.metrics.control.inc(1);
                if shared.draining.load(Ordering::Relaxed) {
                    respond(sink, &error_line(&Reject { id: req.id, code: ErrorCode::Shedding, message: "server is draining".into() }));
                    continue;
                }
                let (id, delta) = delta_of(*req);
                if shared.wal_poisoned() {
                    respond(sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: WAL_POISONED_MSG.into() }));
                    continue;
                }
                // Builds the next generation but keeps serving the current
                // one; the swap happens when `activate` names the id.
                let _serial = shared.reload_serial.lock().unwrap_or_else(|p| p.into_inner());
                match shared.engine.prepare_update(&delta, &shared.tokenizer) {
                    Ok(generation) => {
                        // Stash the delta body for activate-time WAL commit:
                        // the log records *activated* deltas only, and a
                        // parked preparation that never activates must not
                        // be replayed after a restart.
                        *shared.prepared_delta.lock().unwrap_or_else(|p| p.into_inner()) =
                            Some((generation.id(), delta_value(&delta).to_string().into_bytes()));
                        let line = json!({
                            "id": id,
                            "status": "ok",
                            "prepared_generation": generation.id(),
                            "entities": generation.dictionary().len(),
                            "variants": generation.variants(),
                        });
                        respond(sink, &line.to_string());
                    }
                    Err(e) => {
                        respond(sink, &error_line(&Reject { id, code: ErrorCode::BadRequest, message: format!("prepare rejected: {e}") }));
                    }
                }
            }
            Ok(Request::Activate { id, generation }) => {
                shared.metrics.control.inc(1);
                if shared.wal_poisoned() {
                    respond(sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: WAL_POISONED_MSG.into() }));
                    continue;
                }
                let _serial = shared.reload_serial.lock().unwrap_or_else(|p| p.into_inner());
                match shared.engine.activate(generation) {
                    Ok(generation) => {
                        // Activation is the two-phase commit point: log the
                        // stashed prepare body before acking. A missing or
                        // mismatched stash cannot happen while the serial
                        // lock orders prepare/activate, but is handled as a
                        // commit failure rather than a panic.
                        let stashed = shared.prepared_delta.lock().unwrap_or_else(|p| p.into_inner()).take();
                        let commit = match stashed {
                            Some((gen, payload)) if gen == generation.id() => shared.wal_commit(generation.id(), &payload),
                            _ if shared.wal.is_some() => {
                                shared.wal_failed.store(true, Ordering::Relaxed);
                                Err(format!("activated generation {} has no stashed prepare body to log", generation.id()))
                            }
                            _ => Ok(()),
                        };
                        if let Err(e) = commit {
                            respond(sink, &error_line(&Reject { id, code: ErrorCode::Internal, message: e }));
                            continue;
                        }
                        shared.metrics.generation_swaps.inc(1);
                        shared.metrics.generation.set(generation.id().min(i64::MAX as u64) as i64);
                        respond(sink, &json!({"id": id, "status": "ok", "generation": generation.id()}).to_string());
                    }
                    Err(e) => {
                        // The id names a generation this replica has not
                        // prepared: a coordinator treats this as the replica
                        // being out of step and resyncs it.
                        respond(sink, &error_line(&Reject { id, code: ErrorCode::Conflict, message: e.to_string() }));
                    }
                }
            }
            Ok(Request::Stream(req)) => {
                // Stream verbs run inline on this reader thread: a stream
                // is sequential by construction (chunk order matters), so
                // pooling them would only add queueing latency.
                conn_streams.handle(*req);
            }
            Ok(Request::Shutdown(id)) => {
                shared.metrics.control.inc(1);
                shared.draining.store(true, Ordering::Relaxed);
                respond(sink, &json!({"id": id, "status": "ok", "draining": true}).to_string());
                return true;
            }
            Ok(Request::Extract(req)) => {
                if shared.draining.load(Ordering::Relaxed) {
                    shared.metrics.shed.inc(1);
                    respond(sink, &error_line(&Reject { id: req.id, code: ErrorCode::Shedding, message: "server is draining".into() }));
                    continue;
                }
                let deadline = req.limits.deadline.unwrap_or(shared.ceilings.max_timeout);
                let job = Job { expires: Instant::now() + deadline, req: *req, sink: Arc::clone(sink) };
                // Bounded admission: `queued` counts admitted-but-unanswered
                // jobs; beyond the cap the request is answered `shedding`
                // immediately, so pool queues never grow unboundedly.
                if shared.queued.fetch_add(1, Ordering::SeqCst) >= shared.queue_cap {
                    shared.queued.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.shed.inc(1);
                    respond(
                        &job.sink,
                        &error_line(&Reject {
                            id: job.req.id,
                            code: ErrorCode::Shedding,
                            message: "request queue is full".into(),
                        }),
                    );
                } else {
                    shared.metrics.queue_depth.add(1);
                    let shared = Arc::clone(shared);
                    Pool::global().spawn(move |scratch| {
                        // Decrement on every exit path (including a panic
                        // that escapes `run_job`'s isolation) so drain can
                        // rely on `queued` reaching zero.
                        struct Admitted(Arc<Shared>);
                        impl Drop for Admitted {
                            fn drop(&mut self) {
                                self.0.queued.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let admitted = Admitted(shared);
                        admitted.0.metrics.queue_depth.add(-1);
                        worker_job(&admitted.0, scratch, job);
                    });
                }
            }
        }
    }
}

/// Opens (or creates) the delta WAL at `path` and replays its committed
/// suffix over the freshly loaded artifact, bringing the engine to the
/// last *acknowledged* generation. The log may legitimately begin before
/// the artifact's generation (a compaction that crashed between rewriting
/// the artifact and resetting the log): already-folded records are
/// skipped. A log that starts *after* the artifact is a hard error — the
/// deltas needed to bridge the gap are gone.
fn recover_wal(engine: &ShardedEngine, tokenizer: &Tokenizer, path: &Path, metrics: &WalMetrics) -> Result<Wal, String> {
    let started = Instant::now();
    let artifact_gen = engine.generation_id();
    let (wal, replay) = Wal::open_or_create(path, artifact_gen).map_err(|e| format!("{}: {e}", path.display()))?;
    if wal.base_generation() > artifact_gen {
        return Err(format!(
            "{}: log starts at generation {} but the engine artifact is at {artifact_gen}; \
             the artifact predates the log (restore the matching artifact or remove the log)",
            path.display(),
            wal.base_generation()
        ));
    }
    let mut replayed = 0u64;
    for record in &replay.records {
        if record.generation <= artifact_gen {
            continue; // already folded into the artifact by a compaction
        }
        let text = std::str::from_utf8(&record.payload)
            .map_err(|e| format!("{}: generation {} record: payload is not UTF-8: {e}", path.display(), record.generation))?;
        let body: Value = serde_json::from_str(text)
            .map_err(|e| format!("{}: generation {} record: payload is not JSON: {e}", path.display(), record.generation))?;
        let delta = parse_delta(&body).map_err(|e| format!("{}: generation {} record: {e}", path.display(), record.generation))?;
        let generation = engine
            .apply_update(&delta, tokenizer)
            .map_err(|e| format!("{}: replaying the delta for generation {} failed: {e}", path.display(), record.generation))?;
        if generation.id() != record.generation {
            return Err(format!(
                "{}: replay drift: the record for generation {} rebuilt generation {}",
                path.display(),
                record.generation,
                generation.id()
            ));
        }
        replayed += 1;
    }
    metrics.replayed_records.inc(replayed);
    metrics.truncated_bytes.inc(replay.truncated_bytes);
    metrics
        .recovery_nanos
        .set(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX).min(i64::MAX as u64) as i64);
    metrics.records.set(wal.record_count().min(i64::MAX as u64) as i64);
    metrics.bytes.set(wal.len_bytes().min(i64::MAX as u64) as i64);
    if replayed > 0 || replay.truncated_bytes > 0 {
        eprintln!(
            "wal: recovered to generation {} ({} delta(s) replayed, {} torn byte(s) truncated)",
            engine.generation_id(),
            replayed,
            replay.truncated_bytes
        );
    }
    Ok(wal)
}

/// Runs the server until shutdown/EOF, then drains. Returns the final
/// (served, shed, failed) counters.
pub fn serve(engine: ShardedEngine, opts: &ServeOptions) -> Result<(u64, u64, u64), String> {
    let tokenizer = Tokenizer::default();
    let metrics = ServeMetrics::register();
    // WAL-over-snapshot recovery runs before any request is admitted: the
    // first extraction already sees the last acknowledged generation.
    let wal = match &opts.wal {
        None => None,
        Some(path) => Some(Mutex::new(recover_wal(&engine, &tokenizer, path, &metrics.wal)?)),
    };
    // One process-wide pool serves extraction, batch, and shard fan-out
    // alike: `--workers` sizes it (first configuration in the process
    // wins), and its workers own the long-lived extraction scratches.
    Pool::configure_global(opts.workers.max(1));
    let pool = Pool::global();
    pool.attach_metrics(&metrics.registry);
    static SERVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let shared = Arc::new(Shared {
        engine,
        tokenizer,
        ceilings: opts.ceilings,
        idle_timeout: opts.idle_timeout,
        max_conns: opts.max_conns.max(1),
        metrics,
        start: Instant::now(),
        queued: AtomicI64::new(0),
        queue_cap: opts.queue.max(1) as i64 + pool.workers() as i64,
        serve_seq: SERVE_SEQ.fetch_add(1, Ordering::Relaxed),
        draining: AtomicBool::new(false),
        cancel: CancelToken::new(),
        wal,
        wal_failed: AtomicBool::new(false),
        prepared_delta: Mutex::new(None),
        reload_serial: Mutex::new(()),
    });
    shared.metrics.generation.set(shared.engine.snapshot().id().min(i64::MAX as u64) as i64);
    // Bind before entering either transport loop so a bad address fails the
    // command instead of being discovered mid-serve.
    let metrics_listener = match &opts.metrics_listen {
        None => None,
        Some(addr) => Some(TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?),
    };
    match &opts.listen {
        None => {
            if let Some(listener) = metrics_listener {
                // stdout carries the NDJSON responses in stdin mode, so the
                // metrics banner goes to stderr.
                let maddr = listener.local_addr().map_err(|e| e.to_string())?;
                eprintln!("metrics listening on {maddr}");
                spawn_metrics_server(listener, Arc::clone(&shared));
            }
            let stdin = std::io::stdin();
            let mut reader = BufReader::new(stdin.lock());
            let sink: Sink = Arc::new(Mutex::new(Box::new(std::io::stdout())));
            serve_stream(&shared, &mut reader, &sink);
            // stdin EOF (or shutdown request) both end the stream: drain.
            shared.draining.store(true, Ordering::Relaxed);
        }
        Some(addr) => {
            let listener = TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            // Announce the bound address (port 0 resolves here) on stdout so
            // supervisors and the chaos harness can find the server. The
            // metrics banner comes second: harnesses parse the first line as
            // the protocol address unconditionally.
            println!("listening on {local}");
            if let Some(metrics) = &metrics_listener {
                let maddr = metrics.local_addr().map_err(|e| e.to_string())?;
                println!("metrics listening on {maddr}");
            }
            let _ = std::io::stdout().flush();
            if let Some(listener) = metrics_listener {
                spawn_metrics_server(listener, Arc::clone(&shared));
            }
            accept_loop(&listener, &shared);
        }
    }

    drain(&shared, opts.drain);
    let served = shared.metrics.served.value();
    let shed = shared.metrics.shed.value();
    let failed = shared.metrics.failed.value();
    eprintln!("serve: drained; served={served} shed={shed} failed={failed}");
    Ok((served, shed, failed))
}

/// Serves `/metrics` (Prometheus text exposition) and `/metrics.json` over
/// minimal HTTP/1.0, one connection at a time, on a detached thread.
/// Scrapes are rare and the bodies are small, so a single sequential loop
/// is enough; the thread dies with the process after the drain. A scraper
/// that sends garbage gets a 404 and a closed connection — it can never
/// reach the extraction path.
fn spawn_metrics_server(listener: TcpListener, shared: Arc<Shared>) {
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let Ok(read_half) = stream.try_clone() else { continue };
            let mut reader = BufReader::new(read_half);
            let mut request_line = String::new();
            if reader.read_line(&mut request_line).is_err() {
                continue;
            }
            // Drain the header block so well-behaved HTTP/1.1 clients see a
            // response to the request they finished sending.
            loop {
                let mut header = String::new();
                match reader.read_line(&mut header) {
                    Ok(n) if n > 0 && !header.trim_end().is_empty() => {}
                    _ => break,
                }
            }
            let path = request_line.split_whitespace().nth(1).unwrap_or("");
            let (status, content_type, body) = if path == "/metrics.json" {
                ("200 OK", "application/json", shared.metrics_body(true))
            } else if path == "/metrics" || path.starts_with("/metrics?") {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", shared.metrics_body(false))
            } else {
                ("404 Not Found", "text/plain; charset=utf-8", "not found; try /metrics or /metrics.json\n".to_string())
            };
            let response =
                format!("HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len());
            let _ = stream.write_all(response.as_bytes());
        }
    });
}

/// Accepts connections until a `shutdown` request flips the draining flag,
/// then joins every connection handler (their read timeout guarantees they
/// notice the drain within one poll interval even when idle).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers = Vec::new();
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue }; // transient accept errors (e.g. ECONNABORTED)
                                                     // The conns gauge is the live handler count: incremented here (not
                                                     // in the handler, which would race the next accept past the cap)
                                                     // and decremented when `handle_connection` returns.
        if shared.metrics.conns.value() >= shared.max_conns as i64 {
            shared.metrics.conns_rejected.inc(1);
            let reject = Reject {
                id: Value::Null,
                code: ErrorCode::Shedding,
                message: format!("connection limit ({}) reached", shared.max_conns),
            };
            let _ = stream.write_all(error_line(&reject).as_bytes());
            let _ = stream.write_all(b"\n");
            continue; // dropping the stream closes it
        }
        shared.metrics.conns.add(1);
        let shared = Arc::clone(shared);
        handlers.push(std::thread::spawn(move || {
            handle_connection(stream, &shared);
            shared.metrics.conns.add(-1);
        }));
        handlers.retain(|h| !h.is_finished()); // reap finished handlers so the vec stays bounded
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Poll interval for the draining flag on otherwise-blocking TCP reads.
const READ_POLL: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // The timeout turns blocking reads into a drain-flag poll; without it an
    // idle client would pin this thread (and the drain) forever.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let sink: Sink = Arc::new(Mutex::new(Box::new(write_half)));
    if serve_stream(shared, &mut reader, &sink) {
        // A shutdown request arrived on this connection. The acceptor is
        // blocked in `accept`; self-connect once so it can observe
        // `draining` and stop. (The wake-up connection itself is never
        // served — the acceptor checks the flag before spawning.)
        if let Ok(addr) = reader.get_ref().local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Waits for the admitted backlog to be answered. Within `deadline` the
/// pool finishes jobs normally; past it the [`CancelToken`] fires, which
/// stops in-flight extractions mid-document and makes still-queued jobs
/// self-answer `shedding` — so `queued` always reaches zero and every
/// admitted line is answered exactly once. The pool itself is process-wide
/// and keeps running (idle) after the drain.
fn drain(shared: &Arc<Shared>, deadline: Duration) {
    let started = Instant::now();
    while shared.queued.load(Ordering::SeqCst) > 0 {
        if started.elapsed() >= deadline {
            shared.cancel.cancel();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(bytes: &[u8], cap: usize) -> Vec<String> {
        let mut reader = BufReader::new(bytes);
        let mut lr = LineReader::new(cap);
        let mut out = Vec::new();
        loop {
            match lr.next_line(&mut reader).unwrap() {
                LineRead::Eof => return out,
                LineRead::Oversized => out.push("<oversized>".into()),
                LineRead::Line(l) => out.push(String::from_utf8(l).unwrap()),
            }
        }
    }

    #[test]
    fn capped_line_reader_splits_lines() {
        assert_eq!(lines_of(b"one\ntwo\n", 100), ["one", "two"]);
    }

    #[test]
    fn capped_line_reader_returns_final_unterminated_fragment() {
        assert_eq!(lines_of(b"complete\ntruncat", 100), ["complete", "truncat"]);
    }

    #[test]
    fn capped_line_reader_discards_oversized_and_resyncs() {
        let mut input = vec![b'x'; 1000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        assert_eq!(lines_of(&input, 10), ["<oversized>", "ok"]);
    }

    #[test]
    fn capped_line_reader_oversized_at_eof_without_newline() {
        assert_eq!(lines_of(&vec![b'y'; 1000], 10), ["<oversized>"]);
    }

    #[test]
    fn capped_line_reader_exact_cap_fits() {
        assert_eq!(lines_of(b"12345\n", 5), ["12345"]);
    }

    #[test]
    fn capped_line_reader_over_cap_by_one_is_oversized() {
        assert_eq!(lines_of(b"123456\nok\n", 5), ["<oversized>", "ok"]);
    }

    /// A timeout mid-line must not lose the partial prefix: simulate with a
    /// reader that errors between two chunks of one line.
    #[test]
    fn partial_line_survives_interrupted_read() {
        struct Interrupting {
            chunks: Vec<&'static [u8]>,
            next: usize,
            erred: bool,
        }
        impl std::io::Read for Interrupting {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.next == 1 && !self.erred {
                    self.erred = true;
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "poll"));
                }
                if self.next >= self.chunks.len() {
                    return Ok(0);
                }
                let chunk = self.chunks[self.next];
                self.next += 1;
                buf[..chunk.len()].copy_from_slice(chunk);
                Ok(chunk.len())
            }
        }
        let mut reader = BufReader::new(Interrupting { chunks: vec![b"hel", b"lo\n"], next: 0, erred: false });
        let mut lr = LineReader::new(100);
        let first = lr.next_line(&mut reader);
        assert!(matches!(first, Err(ref e) if e.kind() == ErrorKind::WouldBlock), "{first:?}");
        let second = lr.next_line(&mut reader).unwrap();
        assert!(matches!(second, LineRead::Line(ref l) if l == b"hello"), "partial prefix must survive the interruption");
    }
}
