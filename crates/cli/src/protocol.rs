//! Wire protocol of `aeetes serve`: newline-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request (blank lines are
//! ignored). Responses echo the request's `id` verbatim (`null` when
//! absent), so clients may pipeline requests and reconcile out-of-order
//! responses.
//!
//! Request types:
//!
//! ```text
//! {"id": any?, "type": "extract", "doc": "...", "tau": 0.8?, "best": false?,
//!  "timeout_ms": N?, "max_matches": N?, "max_candidates": N?, "top_k": N?}
//! {"id": any?, "type": "stream", "verb": "open", "stream": N, "tau": 0.8?}
//! {"id": any?, "type": "stream", "verb": "feed", "stream": N, "text": "..."}
//! {"id": any?, "type": "stream", "verb": "flush", "stream": N}
//! {"id": any?, "type": "stream", "verb": "close", "stream": N}
//! {"id": any?, "type": "health"}
//! {"id": any?, "type": "stats"}
//! {"id": any?, "type": "metrics"}
//! {"id": any?, "type": "reload", "add_entities": ["..."]?,
//!  "remove_entities": [id, ...]?, "add_rules": [{"lhs": "...", "rhs": "...",
//!  "weight": 1.0?}, ...]?}
//! {"id": any?, "type": "prepare", ...same delta fields as reload...}
//! {"id": any?, "type": "activate", "generation": N}
//! {"id": any?, "type": "shutdown"}
//! ```
//!
//! `stream` verbs drive one incremental extraction per client-chosen
//! `stream` id, scoped to the connection: `open` pins the current engine
//! generation and takes one admission slot, each `feed` answers with the
//! matches that chunk *settled* (no future chunk can extend or re-score
//! them), `flush` finishes the current logical document and resets the
//! stream for the next one, and `close` flushes and releases the stream.
//! Every opened stream is answered with exactly one `closed` event — on
//! explicit close, client disconnect, or server drain.
//!
//! `prepare`/`activate` split a reload in two for fleet coordinators:
//! `prepare` builds the delta's generation off to the side and answers
//! `{"status":"ok","prepared_generation":N}` without serving it; `activate`
//! commits a previously prepared generation by id. A coordinator prepares
//! on every replica, then activates everywhere, so a fleet never serves a
//! mixture of generations. An `activate` whose id does not match the
//! prepared generation fails with code `conflict`.
//!
//! Client-requested budgets are *clamped* by the server's [`Ceilings`] —
//! a client can lower its own budget but never raise it past the
//! server-enforced ceiling.
//!
//! Error taxonomy (the `code` field), so clients can tell retryable from
//! fatal conditions:
//!
//! | code          | meaning                                   | retry? |
//! |---------------|-------------------------------------------|--------|
//! | `bad_request` | malformed JSON / unknown type / bad field | no     |
//! | `too_large`   | document or request line over the ceiling | no     |
//! | `timeout`     | request expired before a worker ran it    | yes    |
//! | `shedding`    | queue full or server draining             | yes    |
//! | `internal`    | extraction panicked (isolated; see logs)  | no     |
//! | `conflict`    | activate id ≠ prepared generation id      | no     |

use aeetes_core::ExtractLimits;
use aeetes_shard::{DictDelta, RuleDelta};
use aeetes_text::EntityId;
use serde_json::{json, Value};
use std::time::Duration;

/// Structured error classes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/ill-typed fields, unknown request type, or a
    /// pathological parameter (e.g. τ outside `(0, 1]`). Not retryable.
    BadRequest,
    /// The document (or the whole request line) exceeds a server ceiling.
    /// Not retryable without shrinking the payload.
    TooLarge,
    /// The request's deadline expired while it waited in the queue.
    /// Retryable.
    Timeout,
    /// Admission control refused the request: queue full or server
    /// draining. Retryable (elsewhere or after backoff).
    Shedding,
    /// Extraction panicked; the fault was isolated to this request.
    Internal,
    /// Two-phase state mismatch: an `activate` named a generation that is
    /// not the one prepared (or nothing is prepared). Not retryable — the
    /// identical request will keep failing; the caller must re-prepare.
    Conflict,
}

impl ErrorCode {
    /// Every variant, for exhaustive table-driven tests and docs.
    pub const ALL: [ErrorCode; 6] = [
        ErrorCode::BadRequest,
        ErrorCode::TooLarge,
        ErrorCode::Timeout,
        ErrorCode::Shedding,
        ErrorCode::Internal,
        ErrorCode::Conflict,
    ];

    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Shedding => "shedding",
            ErrorCode::Internal => "internal",
            ErrorCode::Conflict => "conflict",
        }
    }

    /// Parses the wire spelling back into a code (`None` for unknown
    /// spellings — a coordinator talking to a newer replica treats those
    /// as fatal rather than guessing retryability).
    pub fn parse_wire(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Whether a client may retry the identical request and hope for a
    /// different answer.
    ///
    /// The mapping is deliberately an exhaustive `match` (no `_` arm): a
    /// new error code cannot compile without an explicit, reviewed
    /// retryability decision — coordinators build failover on top of this.
    pub fn retryable(self) -> bool {
        match self {
            // The request itself is defective; an identical retry cannot
            // succeed anywhere.
            ErrorCode::BadRequest => false,
            // The payload exceeds a server ceiling; retrying without
            // shrinking it fails identically.
            ErrorCode::TooLarge => false,
            // The deadline expired while queued: another (less loaded)
            // server, or the same one a moment later, may answer in time.
            ErrorCode::Timeout => true,
            // Admission control refused: queue full or draining. Elsewhere
            // or after backoff the same request is fine.
            ErrorCode::Shedding => true,
            // Extraction panicked on this input; the same input will very
            // likely panic again on any replica of the same build.
            ErrorCode::Internal => false,
            // Two-phase state mismatch; the caller must change the request
            // (re-prepare), not repeat it.
            ErrorCode::Conflict => false,
        }
    }
}

/// Server-enforced request ceilings. Client-requested budgets are clamped
/// to these; requests exceeding hard size ceilings are rejected.
#[derive(Debug, Clone, Copy)]
pub struct Ceilings {
    /// Hard cap on `doc` length in bytes (`too_large` beyond it).
    pub max_doc_bytes: usize,
    /// Upper bound — and default — for the per-request deadline.
    pub max_timeout: Duration,
    /// Upper bound — and default — for `max_matches`.
    pub max_matches: usize,
    /// Upper bound — and default — for `max_candidates`.
    pub max_candidates: usize,
}

impl Default for Ceilings {
    fn default() -> Self {
        Ceilings {
            max_doc_bytes: 1 << 20, // 1 MiB
            max_timeout: Duration::from_secs(10),
            max_matches: 10_000,
            max_candidates: 1_000_000,
        }
    }
}

/// A parsed, validated, ceiling-clamped extraction request.
#[derive(Debug)]
pub struct ExtractRequest {
    /// Client-supplied correlation id, echoed verbatim in the response.
    pub id: Value,
    /// Document text to extract from.
    pub doc: String,
    /// Similarity threshold, validated to `(0, 1]`.
    pub tau: f64,
    /// Whether to suppress overlapping matches (best-match-per-region).
    pub best: bool,
    /// Keep only the `k` best-scoring matches (clamped to the
    /// `max_matches` ceiling). Responses are then ordered by score, best
    /// first, instead of by span.
    pub top_k: Option<usize>,
    /// Effective budgets after clamping against the server [`Ceilings`].
    pub limits: ExtractLimits,
}

/// One verb of the incremental stream protocol.
#[derive(Debug)]
pub enum StreamVerb {
    /// Create the stream: pins the serving generation and takes one
    /// admission slot until the stream closes.
    Open {
        /// Similarity threshold for the stream's lifetime, validated to
        /// `(0, 1]`.
        tau: f64,
    },
    /// Feed one text chunk (arbitrary split points; ceiling-checked like
    /// an extract `doc`).
    Feed {
        /// The chunk. May end mid-token — the stream carries state.
        text: String,
    },
    /// Finish the current logical document: emit everything still carried
    /// and reset the stream for the next document.
    Flush,
    /// Flush, emit the final matches, and release the stream.
    Close,
}

/// A parsed, validated stream request.
#[derive(Debug)]
pub struct StreamRequest {
    /// Client-supplied correlation id, echoed verbatim in the response.
    pub id: Value,
    /// Client-chosen stream id, scoped to the connection.
    pub stream: u64,
    /// What to do with it.
    pub verb: StreamVerb,
}

/// A parsed, validated dictionary-reload request (the admin interface to
/// the sharded engine's generation swap).
#[derive(Debug)]
pub struct ReloadRequest {
    /// Client-supplied correlation id, echoed verbatim in the response.
    pub id: Value,
    /// Raw entity strings to append to the dictionary.
    pub add_entities: Vec<String>,
    /// Origin entity ids to tombstone.
    pub remove_entities: Vec<u32>,
    /// Synonym rules to append, as `(lhs, rhs, weight)`.
    pub add_rules: Vec<(String, String, f64)>,
}

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Run an extraction (queued; subject to admission control).
    Extract(Box<ExtractRequest>),
    /// Drive one incremental stream (answered inline on the connection's
    /// reader thread; open streams count against admission).
    Stream(Box<StreamRequest>),
    /// Liveness probe (answered inline, never queued or shed).
    Health(Value),
    /// Counter snapshot (answered inline, never queued or shed).
    Stats(Value),
    /// Full metric-registry snapshot in the JSON export shape (answered
    /// inline, never queued or shed). Same data the `--metrics-listen`
    /// endpoint scrapes, embedded in one response line.
    Metrics(Value),
    /// Apply a dictionary delta and swap to a new generation (answered
    /// inline once the swap completes; in-flight extractions are
    /// unaffected — they finish on the generation they started on).
    Reload(Box<ReloadRequest>),
    /// Phase one of a two-phase reload: build the delta's generation but
    /// do not serve it (answered inline with `prepared_generation`).
    Prepare(Box<ReloadRequest>),
    /// Phase two: swap in the generation previously built by `prepare`,
    /// named by id (answered inline; `conflict` on id mismatch).
    Activate {
        /// Echoed correlation id.
        id: Value,
        /// Generation id that must match the prepared generation.
        generation: u64,
    },
    /// Begin graceful drain (answered inline).
    Shutdown(Value),
}

/// A request that could not be accepted, carrying everything needed to
/// build the error response.
#[derive(Debug)]
pub struct Reject {
    /// Echoed id (``null`` when the line was too broken to recover one).
    pub id: Value,
    /// Error class.
    pub code: ErrorCode,
    /// Human-oriented detail.
    pub message: String,
}

impl Reject {
    fn new(id: Value, code: ErrorCode, message: impl Into<String>) -> Self {
        Reject { id, code, message: message.into() }
    }
}

/// Parses and validates one request line against the server ceilings.
pub fn parse_request(line: &str, ceilings: &Ceilings) -> Result<Request, Reject> {
    let value = serde_json::from_str(line).map_err(|e| Reject::new(Value::Null, ErrorCode::BadRequest, format!("invalid JSON: {e}")))?;
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let Some(obj) = value.as_object() else {
        return Err(Reject::new(id, ErrorCode::BadRequest, "request must be a JSON object"));
    };
    let Some(ty) = obj.get("type").and_then(Value::as_str) else {
        return Err(Reject::new(id, ErrorCode::BadRequest, "missing or non-string `type` field"));
    };
    match ty {
        "health" => Ok(Request::Health(id)),
        "stats" => Ok(Request::Stats(id)),
        "metrics" => Ok(Request::Metrics(id)),
        "shutdown" => Ok(Request::Shutdown(id)),
        "reload" => parse_reload(id, &value, false),
        "prepare" => parse_reload(id, &value, true),
        "activate" => match value.get("generation").and_then(Value::as_u64) {
            Some(generation) => Ok(Request::Activate { id, generation }),
            None => Err(Reject::new(id, ErrorCode::BadRequest, "`activate` needs a numeric `generation` field")),
        },
        "extract" => parse_extract(id, &value, ceilings),
        "stream" => parse_stream(id, &value, ceilings),
        other => Err(Reject::new(
            id,
            ErrorCode::BadRequest,
            format!("unknown request type `{other}` (extract|stream|health|stats|metrics|reload|prepare|activate|shutdown)"),
        )),
    }
}

fn parse_reload(id: Value, value: &Value, prepare: bool) -> Result<Request, Reject> {
    let mut req = ReloadRequest {
        id: id.clone(),
        add_entities: Vec::new(),
        remove_entities: Vec::new(),
        add_rules: Vec::new(),
    };
    if let Some(v) = value.get("add_entities") {
        let Some(arr) = v.as_array() else {
            return Err(Reject::new(id, ErrorCode::BadRequest, "`add_entities` must be an array of strings"));
        };
        for e in arr {
            match e.as_str() {
                Some(s) => req.add_entities.push(s.to_string()),
                None => return Err(Reject::new(id, ErrorCode::BadRequest, "`add_entities` entries must be strings")),
            }
        }
    }
    if let Some(v) = value.get("remove_entities") {
        let Some(arr) = v.as_array() else {
            return Err(Reject::new(id, ErrorCode::BadRequest, "`remove_entities` must be an array of entity ids"));
        };
        for e in arr {
            match e.as_u64().and_then(|n| u32::try_from(n).ok()) {
                Some(n) => req.remove_entities.push(n),
                None => return Err(Reject::new(id, ErrorCode::BadRequest, "`remove_entities` entries must be u32 entity ids")),
            }
        }
    }
    if let Some(v) = value.get("add_rules") {
        let Some(arr) = v.as_array() else {
            return Err(Reject::new(id, ErrorCode::BadRequest, "`add_rules` must be an array of {lhs, rhs, weight?} objects"));
        };
        for r in arr {
            let (Some(lhs), Some(rhs)) = (r.get("lhs").and_then(Value::as_str), r.get("rhs").and_then(Value::as_str)) else {
                return Err(Reject::new(id, ErrorCode::BadRequest, "`add_rules` entries need string `lhs` and `rhs`"));
            };
            let weight = match r.get("weight") {
                None => 1.0,
                Some(w) => match w.as_f64() {
                    Some(w) if w > 0.0 && w <= 1.0 => w,
                    Some(w) => return Err(Reject::new(id, ErrorCode::BadRequest, format!("rule `weight` must be in (0, 1], got {w}"))),
                    None => return Err(Reject::new(id, ErrorCode::BadRequest, "rule `weight` must be a number")),
                },
            };
            req.add_rules.push((lhs.to_string(), rhs.to_string(), weight));
        }
    }
    Ok(if prepare {
        Request::Prepare(Box::new(req))
    } else {
        Request::Reload(Box::new(req))
    })
}

fn parse_extract(id: Value, value: &Value, ceilings: &Ceilings) -> Result<Request, Reject> {
    let doc = match value.get("doc") {
        Some(v) => match v.as_str() {
            Some(s) => s.to_string(),
            None => return Err(Reject::new(id, ErrorCode::BadRequest, "`doc` must be a string")),
        },
        None => return Err(Reject::new(id, ErrorCode::BadRequest, "missing `doc` field")),
    };
    if doc.len() > ceilings.max_doc_bytes {
        let msg = format!("document is {} bytes; ceiling is {}", doc.len(), ceilings.max_doc_bytes);
        return Err(Reject::new(id, ErrorCode::TooLarge, msg));
    }
    let tau = parse_tau(&id, value)?;
    let best = match value.get("best") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return Err(Reject::new(id, ErrorCode::BadRequest, "`best` must be a boolean")),
        },
    };
    let timeout_ms = optional_u64(&id, value, "timeout_ms")?;
    let max_matches = optional_u64(&id, value, "max_matches")?;
    let max_candidates = optional_u64(&id, value, "max_candidates")?;
    // Like the budgets, `top_k` clamps to the match ceiling: a giant k is
    // just "all matches, score-ordered", never an allocation lever.
    let top_k = optional_u64(&id, value, "top_k")?.map(|k| (k as usize).min(ceilings.max_matches));
    // Clamp client budgets to the server ceilings: the client may only
    // tighten, never loosen. Absent fields get the full ceiling.
    let limits = ExtractLimits {
        deadline: Some(timeout_ms.map_or(ceilings.max_timeout, |ms| Duration::from_millis(ms).min(ceilings.max_timeout))),
        max_matches: Some(max_matches.map_or(ceilings.max_matches, |n| (n as usize).min(ceilings.max_matches))),
        max_candidates: Some(max_candidates.map_or(ceilings.max_candidates, |n| (n as usize).min(ceilings.max_candidates))),
        ..ExtractLimits::UNLIMITED
    };
    Ok(Request::Extract(Box::new(ExtractRequest { id, doc, tau, best, top_k, limits })))
}

/// Validates a request's `tau` field (default 0.8). NaN fails `t > 0.0`,
/// infinities fail `t <= 1.0`: every pathological τ lands here with a
/// structured error instead of reaching the engine's panic.
fn parse_tau(id: &Value, value: &Value) -> Result<f64, Reject> {
    match value.get("tau") {
        None => Ok(0.8),
        Some(v) => match v.as_f64() {
            Some(t) if t > 0.0 && t <= 1.0 => Ok(t),
            Some(t) => Err(Reject::new(id.clone(), ErrorCode::BadRequest, format!("`tau` must be in (0, 1], got {t}"))),
            None => Err(Reject::new(id.clone(), ErrorCode::BadRequest, "`tau` must be a number")),
        },
    }
}

fn parse_stream(id: Value, value: &Value, ceilings: &Ceilings) -> Result<Request, Reject> {
    let Some(stream) = value.get("stream").and_then(Value::as_u64) else {
        return Err(Reject::new(id, ErrorCode::BadRequest, "`stream` requests need a numeric `stream` id"));
    };
    let Some(verb) = value.get("verb").and_then(Value::as_str) else {
        return Err(Reject::new(id, ErrorCode::BadRequest, "missing or non-string `verb` field (open|feed|flush|close)"));
    };
    let verb = match verb {
        "open" => StreamVerb::Open { tau: parse_tau(&id, value)? },
        "feed" => {
            let text = match value.get("text") {
                Some(v) => match v.as_str() {
                    Some(s) => s.to_string(),
                    None => return Err(Reject::new(id, ErrorCode::BadRequest, "`text` must be a string")),
                },
                None => return Err(Reject::new(id, ErrorCode::BadRequest, "`feed` needs a `text` field")),
            };
            // Each chunk obeys the same ceiling as an extract `doc`; the
            // stream's *carried* bytes stay bounded by the engine's window
            // length, not by chunk count.
            if text.len() > ceilings.max_doc_bytes {
                let msg = format!("chunk is {} bytes; ceiling is {}", text.len(), ceilings.max_doc_bytes);
                return Err(Reject::new(id, ErrorCode::TooLarge, msg));
            }
            StreamVerb::Feed { text }
        }
        "flush" => StreamVerb::Flush,
        "close" => StreamVerb::Close,
        other => {
            return Err(Reject::new(id, ErrorCode::BadRequest, format!("unknown stream verb `{other}` (open|feed|flush|close)")));
        }
    };
    Ok(Request::Stream(Box::new(StreamRequest { id, stream, verb })))
}

/// Parses a bare delta body (the reload fields without the `type`/`id`
/// envelope) into the engine's [`DictDelta`]. This is the decoder for WAL
/// payloads: the server logs each activated delta as canonical JSON (see
/// [`delta_value`]) and replays it through here on restart, and the fleet
/// coordinator's compactor folds logged deltas into a fresh artifact with
/// the same code path. Validation is identical to a live `reload` request.
pub fn parse_delta(value: &Value) -> Result<DictDelta, String> {
    match parse_reload(Value::Null, value, false) {
        Ok(Request::Reload(req)) => Ok(DictDelta {
            add_entities: req.add_entities,
            remove_entities: req.remove_entities.into_iter().map(EntityId).collect(),
            add_rules: req.add_rules.into_iter().map(|(lhs, rhs, weight)| RuleDelta { lhs, rhs, weight }).collect(),
        }),
        Ok(_) => unreachable!("parse_reload(prepare=false) only returns Reload"),
        Err(reject) => Err(reject.message),
    }
}

/// Canonical JSON body of a delta — the exact shape [`parse_delta`]
/// accepts, used as the WAL record payload. Round-trips losslessly:
/// `parse_delta(&delta_value(&d)) == d`.
pub fn delta_value(delta: &DictDelta) -> Value {
    json!({
        "add_entities": delta.add_entities,
        "remove_entities": delta.remove_entities.iter().map(|e| e.0).collect::<Vec<u32>>(),
        "add_rules": delta
            .add_rules
            .iter()
            .map(|r| json!({"lhs": r.lhs, "rhs": r.rhs, "weight": r.weight}))
            .collect::<Vec<Value>>(),
    })
}

fn optional_u64(id: &Value, value: &Value, field: &str) -> Result<Option<u64>, Reject> {
    match value.get(field) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(Reject::new(id.clone(), ErrorCode::BadRequest, format!("`{field}` must be a non-negative integer"))),
        },
    }
}

/// Serializes an error (or shedding) response line. Shedding gets its own
/// top-level status so naive clients checking only `status` still back off.
pub fn error_line(reject: &Reject) -> String {
    let status = if reject.code == ErrorCode::Shedding { "shedding" } else { "error" };
    json!({
        "id": reject.id,
        "status": status,
        "code": reject.code.as_str(),
        "retryable": reject.code.retryable(),
        "message": reject.message,
    })
    .to_string()
}

/// Serializes a successful extraction response line.
pub fn ok_line(id: &Value, matches: Value, truncated: bool) -> String {
    json!({
        "id": id,
        "status": "ok",
        "truncated": truncated,
        "matches": matches,
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ceilings() -> Ceilings {
        Ceilings::default()
    }

    fn parse(line: &str) -> Result<Request, Reject> {
        parse_request(line, &ceilings())
    }

    #[test]
    fn extract_request_round_trips_fields() {
        let r = parse(r#"{"id": 7, "type": "extract", "doc": "some text", "tau": 0.9, "best": true}"#).unwrap();
        let Request::Extract(req) = r else { panic!("expected extract") };
        assert_eq!(req.id.as_u64(), Some(7));
        assert_eq!(req.doc, "some text");
        assert_eq!(req.tau, 0.9);
        assert!(req.best);
        assert_eq!(req.limits.max_matches, Some(ceilings().max_matches));
    }

    #[test]
    fn budgets_clamp_to_ceilings() {
        let r = parse(r#"{"type":"extract","doc":"x","timeout_ms":999999999,"max_matches":5,"max_candidates":999999999999}"#).unwrap();
        let Request::Extract(req) = r else { panic!("expected extract") };
        assert_eq!(req.limits.deadline, Some(ceilings().max_timeout), "timeout clamps down to the ceiling");
        assert_eq!(req.limits.max_matches, Some(5), "client may tighten");
        assert_eq!(req.limits.max_candidates, Some(ceilings().max_candidates));
    }

    #[test]
    fn top_k_parses_and_clamps() {
        let r = parse(r#"{"type":"extract","doc":"x","top_k":3}"#).unwrap();
        let Request::Extract(req) = r else { panic!("expected extract") };
        assert_eq!(req.top_k, Some(3));
        let r = parse(r#"{"type":"extract","doc":"x"}"#).unwrap();
        let Request::Extract(req) = r else { panic!("expected extract") };
        assert_eq!(req.top_k, None, "absent means all matches, span-ordered");
        let r = parse(r#"{"type":"extract","doc":"x","top_k":99999999}"#).unwrap();
        let Request::Extract(req) = r else { panic!("expected extract") };
        assert_eq!(req.top_k, Some(ceilings().max_matches), "k clamps to the match ceiling");
        assert_eq!(parse(r#"{"type":"extract","doc":"x","top_k":-2}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(parse(r#"{"type":"extract","doc":"x","top_k":"all"}"#).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn stream_verbs_parse() {
        let r = parse(r#"{"id":1,"type":"stream","verb":"open","stream":7,"tau":0.9}"#).unwrap();
        let Request::Stream(req) = r else { panic!("expected stream") };
        assert_eq!(req.stream, 7);
        let StreamVerb::Open { tau } = req.verb else { panic!("expected open") };
        assert_eq!(tau, 0.9);

        let r = parse(r#"{"type":"stream","verb":"feed","stream":7,"text":"some chu"}"#).unwrap();
        let Request::Stream(req) = r else { panic!("expected stream") };
        let StreamVerb::Feed { text } = req.verb else { panic!("expected feed") };
        assert_eq!(text, "some chu");

        for (line, expect_flush) in [
            (r#"{"type":"stream","verb":"flush","stream":0}"#, true),
            (r#"{"type":"stream","verb":"close","stream":0}"#, false),
        ] {
            let Request::Stream(req) = parse(line).unwrap() else {
                panic!("expected stream")
            };
            assert_eq!(matches!(req.verb, StreamVerb::Flush), expect_flush, "{line}");
        }
    }

    #[test]
    fn stream_open_defaults_tau() {
        let Request::Stream(req) = parse(r#"{"type":"stream","verb":"open","stream":1}"#).unwrap() else {
            panic!("expected stream")
        };
        let StreamVerb::Open { tau } = req.verb else { panic!("expected open") };
        assert_eq!(tau, 0.8);
    }

    #[test]
    fn malformed_stream_requests_are_bad_requests() {
        for line in [
            r#"{"type":"stream","verb":"open"}"#,
            r#"{"type":"stream","stream":1}"#,
            r#"{"type":"stream","verb":"devour","stream":1}"#,
            r#"{"type":"stream","verb":"open","stream":"one"}"#,
            r#"{"type":"stream","verb":"open","stream":1,"tau":0}"#,
            r#"{"type":"stream","verb":"feed","stream":1}"#,
            r#"{"type":"stream","verb":"feed","stream":1,"text":5}"#,
        ] {
            assert_eq!(parse(line).unwrap_err().code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn oversized_stream_chunk_is_too_large() {
        let c = Ceilings { max_doc_bytes: 8, ..Ceilings::default() };
        let e = parse_request(r#"{"type":"stream","verb":"feed","stream":1,"text":"123456789"}"#, &c).unwrap_err();
        assert_eq!(e.code, ErrorCode::TooLarge);
    }

    #[test]
    fn malformed_json_is_bad_request_with_null_id() {
        let e = parse("{not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.id.is_null());
    }

    #[test]
    fn pathological_tau_is_bad_request() {
        for tau in ["0", "-1", "1.5", "1e308", "null", "\"high\""] {
            let line = format!(r#"{{"id":"t","type":"extract","doc":"x","tau":{tau}}}"#);
            let e = parse_request(&line, &ceilings()).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "tau={tau}");
            assert_eq!(e.id.as_str(), Some("t"), "id survives validation failure");
        }
    }

    #[test]
    fn oversized_doc_is_too_large() {
        let c = Ceilings { max_doc_bytes: 8, ..Ceilings::default() };
        let e = parse_request(r#"{"type":"extract","doc":"123456789"}"#, &c).unwrap_err();
        assert_eq!(e.code, ErrorCode::TooLarge);
    }

    #[test]
    fn unknown_type_and_missing_fields_are_bad_requests() {
        assert_eq!(parse(r#"{"type":"destroy"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(parse(r#"{"type":"extract"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(parse(r#"{"doc":"x"}"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(parse(r#"[1,2]"#).unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(parse(r#""just a string""#).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn control_requests_parse() {
        assert!(matches!(parse(r#"{"type":"health"}"#).unwrap(), Request::Health(_)));
        assert!(matches!(parse(r#"{"type":"stats","id":1}"#).unwrap(), Request::Stats(_)));
        assert!(matches!(parse(r#"{"type":"metrics","id":2}"#).unwrap(), Request::Metrics(_)));
        assert!(matches!(parse(r#"{"type":"shutdown"}"#).unwrap(), Request::Shutdown(_)));
    }

    #[test]
    fn reload_request_parses_delta_fields() {
        let r = parse(
            r#"{"id":3,"type":"reload","add_entities":["eth zurich"],"remove_entities":[0,4],
                "add_rules":[{"lhs":"ch","rhs":"switzerland"},{"lhs":"uni","rhs":"university","weight":0.5}]}"#,
        )
        .unwrap();
        let Request::Reload(req) = r else { panic!("expected reload") };
        assert_eq!(req.id.as_u64(), Some(3));
        assert_eq!(req.add_entities, vec!["eth zurich"]);
        assert_eq!(req.remove_entities, vec![0, 4]);
        assert_eq!(req.add_rules.len(), 2);
        assert_eq!(req.add_rules[0], ("ch".into(), "switzerland".into(), 1.0));
        assert_eq!(req.add_rules[1].2, 0.5);
    }

    /// The documented retryability contract, written as its own exhaustive
    /// `match`: adding an `ErrorCode` variant fails to compile here (and in
    /// `retryable()` itself) until someone makes — and documents — an
    /// explicit retry decision for it. Coordinator failover is built on
    /// this mapping, so it must never change by accident or by default.
    #[test]
    fn every_error_code_has_an_explicit_retryable_mapping() {
        fn documented(code: ErrorCode) -> (bool, &'static str) {
            match code {
                ErrorCode::BadRequest => (false, "bad_request"),
                ErrorCode::TooLarge => (false, "too_large"),
                ErrorCode::Timeout => (true, "timeout"),
                ErrorCode::Shedding => (true, "shedding"),
                ErrorCode::Internal => (false, "internal"),
                ErrorCode::Conflict => (false, "conflict"),
            }
        }
        assert_eq!(ErrorCode::ALL.len(), 6, "ALL must enumerate every variant");
        for code in ErrorCode::ALL {
            let (retry, wire) = documented(code);
            assert_eq!(code.retryable(), retry, "{wire}: retryable() diverged from the documented contract");
            assert_eq!(code.as_str(), wire, "wire spelling diverged");
            assert_eq!(ErrorCode::parse_wire(wire), Some(code), "parse_wire must round-trip {wire}");
            // The serialized error line must agree with the enum, so wire
            // clients (the fleet coordinator) see the same contract.
            let line = error_line(&Reject::new(Value::Null, code, "x"));
            let v: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(v.get("retryable").and_then(Value::as_bool), Some(retry), "{wire}");
            assert_eq!(v.get("code").and_then(Value::as_str), Some(wire));
        }
        assert_eq!(ErrorCode::parse_wire("no_such_code"), None);
    }

    /// The coordinator cannot depend on this crate (the dependency points
    /// the other way), so it carries its own copy of the retryability
    /// predicate keyed on wire spellings. Pin the two against each other:
    /// if either side changes, this fails before a fleet misroutes.
    #[test]
    fn cluster_retryability_matches_protocol() {
        for code in ErrorCode::ALL {
            assert_eq!(
                aeetes_cluster::retryable_code(code.as_str()),
                code.retryable(),
                "{}: aeetes_cluster::retryable_code diverged from ErrorCode::retryable",
                code.as_str()
            );
        }
    }

    #[test]
    fn prepare_parses_like_reload() {
        let r = parse(r#"{"id":9,"type":"prepare","add_entities":["eth zurich"]}"#).unwrap();
        let Request::Prepare(req) = r else { panic!("expected prepare") };
        assert_eq!(req.id.as_u64(), Some(9));
        assert_eq!(req.add_entities, vec!["eth zurich"]);
        // The same malformed fields are rejected identically.
        assert_eq!(parse(r#"{"type":"prepare","add_entities":[1]}"#).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn activate_requires_numeric_generation() {
        let r = parse(r#"{"id":"a","type":"activate","generation":4}"#).unwrap();
        let Request::Activate { id, generation } = r else {
            panic!("expected activate")
        };
        assert_eq!(id.as_str(), Some("a"));
        assert_eq!(generation, 4);
        for line in [
            r#"{"type":"activate"}"#,
            r#"{"type":"activate","generation":"two"}"#,
            r#"{"type":"activate","generation":-1}"#,
            r#"{"type":"activate","generation":1.5}"#,
        ] {
            assert_eq!(parse(line).unwrap_err().code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn empty_reload_parses_as_noop_delta() {
        let Request::Reload(req) = parse(r#"{"type":"reload"}"#).unwrap() else {
            panic!("expected reload")
        };
        assert!(req.add_entities.is_empty() && req.remove_entities.is_empty() && req.add_rules.is_empty());
    }

    #[test]
    fn malformed_reload_fields_are_bad_requests() {
        for line in [
            r#"{"type":"reload","add_entities":"x"}"#,
            r#"{"type":"reload","add_entities":[1]}"#,
            r#"{"type":"reload","remove_entities":[-1]}"#,
            r#"{"type":"reload","remove_entities":[99999999999]}"#,
            r#"{"type":"reload","add_rules":[{"lhs":"a"}]}"#,
            r#"{"type":"reload","add_rules":[{"lhs":"a","rhs":"b","weight":0}]}"#,
            r#"{"type":"reload","add_rules":[{"lhs":"a","rhs":"b","weight":"x"}]}"#,
        ] {
            assert_eq!(parse(line).unwrap_err().code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn delta_payload_round_trips() {
        let delta = DictDelta {
            add_entities: vec!["eth zurich".into(), "uq au".into()],
            remove_entities: vec![EntityId(3), EntityId(9)],
            add_rules: vec![RuleDelta { lhs: "uq".into(), rhs: "university of queensland".into(), weight: 0.75 }],
        };
        let v = delta_value(&delta);
        let back = parse_delta(&v).unwrap();
        assert_eq!(back.add_entities, delta.add_entities);
        assert_eq!(back.remove_entities, delta.remove_entities);
        assert_eq!(back.add_rules.len(), 1);
        assert_eq!(back.add_rules[0].lhs, "uq");
        assert_eq!(back.add_rules[0].weight, 0.75);
        // And through actual bytes, as the WAL stores it.
        let bytes = v.to_string().into_bytes();
        let reparsed: Value = serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(parse_delta(&reparsed).unwrap().add_entities, delta.add_entities);
        // Malformed payloads surface as errors, never panics.
        assert!(parse_delta(&json!({"add_entities": [1]})).is_err());
        assert!(parse_delta(&json!({"add_rules": [{"lhs": "a"}]})).is_err());
    }

    #[test]
    fn error_line_shape() {
        let line = error_line(&Reject::new(Value::Null, ErrorCode::Shedding, "queue full"));
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("shedding"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("shedding"));
        assert_eq!(v.get("retryable").and_then(Value::as_bool), Some(true));

        let line = error_line(&Reject::new(Value::Null, ErrorCode::BadRequest, "nope"));
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("retryable").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn ok_line_echoes_id() {
        let line = ok_line(&serde_json::from_str("\"abc\"").unwrap(), serde_json::Value::Array(vec![]), true);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("abc"));
        assert_eq!(v.get("truncated").and_then(Value::as_bool), Some(true));
    }
}
