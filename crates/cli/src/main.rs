//! `aeetes` — command-line entity extraction with synonyms.
//!
//! ```text
//! aeetes build   --dict FILE --rules FILE --out ENGINE [--max-derived N]
//! aeetes extract --engine ENGINE --docs FILE [--tau F] [--metric NAME]
//!                [--threads N] [--best] [--format tsv|jsonl]
//!                [--timeout SECS] [--max-candidates N] [--max-matches N]
//! aeetes serve   --engine ENGINE [--listen ADDR:PORT] [--workers N]
//!                [--queue N] [--drain SECS] [--metrics-listen ADDR:PORT]
//!                [--wal FILE] [...ceiling flags]
//! aeetes wal     (inspect | compact) --wal FILE [--engine ENGINE]
//! aeetes profile (--engine ENGINE --doc FILE | [--profile NAME] [--seed N])
//!                [--tau F] [--runs N] [--warmup N] [--docs N]
//! aeetes stats   --engine ENGINE
//! aeetes dict    info FILE [--json]
//! aeetes demo
//! ```
//!
//! File formats:
//! * dictionary — one entity per line;
//! * rules — one rule per line: `lhs <TAB> rhs [<TAB> weight]`;
//! * documents — one document per line.
//!
//! Exit codes: `0` complete results, `1` failure, `2` success with
//! budget-truncated (partial but exact) results.

use aeetes_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("build") => commands::build(&argv[1..]),
        Some("extract") => commands::extract(&argv[1..]),
        Some("serve") => commands::serve_cmd(&argv[1..]),
        Some("fleet") => commands::fleet_cmd(&argv[1..]),
        Some("profile") => commands::profile_cmd(&argv[1..]),
        Some("wal") => commands::wal_cmd(&argv[1..]),
        Some("stats") => commands::stats(&argv[1..]),
        Some("dict") => commands::dict_cmd(&argv[1..]),
        Some("generate") => commands::generate_cmd(&argv[1..]),
        Some("demo") => commands::demo(),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", commands::USAGE);
            if argv.is_empty() {
                Err("missing subcommand".into())
            } else {
                Ok(commands::EXIT_OK)
            }
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try --help)")),
    }
    .unwrap_or_else(|err| {
        eprintln!("error: {err}");
        1
    });
    std::process::exit(code);
}
