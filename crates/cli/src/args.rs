//! Tiny flag parser: `--name value` / `--name=value` pairs and boolean
//! `--name` switches.

use std::collections::HashMap;

/// Parsed flags of one subcommand.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv`; `bool_flags` names the value-less switches and
    /// `value_flags` the known pairs, accepted both as `--name value` and
    /// `--name=value`. Anything else is rejected, so a typo'd flag fails
    /// loudly instead of being silently ignored (a missing
    /// `--max-candidates` cap is a correctness bug).
    pub fn parse(argv: &[String], bool_flags: &[&str], value_flags: &[&str]) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{flag}`"));
            };
            if let Some((name, value)) = name.split_once('=') {
                if value_flags.contains(&name) {
                    out.values.insert(name.to_string(), value.to_string());
                    continue;
                }
                if bool_flags.contains(&name) {
                    return Err(format!("--{name} is a switch and takes no value (got `--{name}={value}`)"));
                }
                // Fall through to the unknown-flag error with the bare name.
                return Err(unknown_flag(name, bool_flags, value_flags));
            }
            if bool_flags.contains(&name) {
                out.switches.push(name.to_string());
            } else if value_flags.contains(&name) {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                out.values.insert(name.to_string(), value.clone());
            } else {
                return Err(unknown_flag(name, bool_flags, value_flags));
            }
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values.get(name).map(String::as_str).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn unknown_flag(name: &str, bool_flags: &[&str], value_flags: &[&str]) -> String {
    let mut known: Vec<&str> = value_flags.iter().chain(bool_flags).copied().collect();
    known.sort_unstable();
    format!("unknown flag --{name} (expected one of: --{})", known.join(", --"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(&argv(&["--tau", "0.8", "--best", "--docs", "d.txt"]), &["best"], &["tau", "docs"]).unwrap();
        assert_eq!(a.required("tau").unwrap(), "0.8");
        assert_eq!(a.required("docs").unwrap(), "d.txt");
        assert!(a.switch("best"));
        assert!(!a.switch("jsonl"));
        assert_eq!(a.parse_or("tau", 0.0).unwrap(), 0.8);
        assert_eq!(a.parse_or("threads", 4usize).unwrap(), 4);
    }

    #[test]
    fn equals_form_parses_like_space_form() {
        let a = Args::parse(&argv(&["--tau=0.8", "--docs=d.txt", "--best"]), &["best"], &["tau", "docs"]).unwrap();
        assert_eq!(a.parse_or("tau", 0.0).unwrap(), 0.8);
        assert_eq!(a.required("docs").unwrap(), "d.txt");
        assert!(a.switch("best"));
    }

    #[test]
    fn equals_form_value_may_contain_equals_and_be_empty() {
        let a = Args::parse(&argv(&["--expr=a=b", "--out="]), &[], &["expr", "out"]).unwrap();
        assert_eq!(a.required("expr").unwrap(), "a=b");
        assert_eq!(a.required("out").unwrap(), "");
    }

    #[test]
    fn equals_on_a_switch_is_an_error() {
        let err = Args::parse(&argv(&["--best=true"]), &["best"], &["tau"]).unwrap_err();
        assert!(err.contains("--best is a switch"), "{err}");
    }

    #[test]
    fn equals_form_unknown_flag_names_alternatives() {
        let err = Args::parse(&argv(&["--tua=0.8"]), &["best"], &["tau"]).unwrap_err();
        assert!(err.contains("unknown flag --tua"), "{err}");
        assert!(err.contains("--tau"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--tau"]), &[], &["tau"]).is_err());
        assert!(Args::parse(&argv(&["tau", "0.8"]), &[], &["tau"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error_naming_the_alternatives() {
        let err = Args::parse(&argv(&["--max-candidate", "5"]), &["best"], &["tau", "max-candidates"]).unwrap_err();
        assert!(err.contains("unknown flag --max-candidate"), "{err}");
        assert!(err.contains("--max-candidates"), "{err}");
        assert!(err.contains("--best"), "{err}");
    }

    #[test]
    fn missing_required_flag() {
        let a = Args::parse(&argv(&[]), &[], &[]).unwrap();
        assert!(a.required("dict").is_err());
        assert!(a.optional("dict").is_none());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = Args::parse(&argv(&["--tau", "xyz"]), &[], &["tau"]).unwrap();
        let err = a.parse_or("tau", 0.5f64).unwrap_err();
        assert!(err.contains("--tau"));
    }
}
