//! Library surface of the `aeetes` CLI (kept separate from `main` so the
//! subcommands are integration-testable).

pub mod args;
pub mod commands;
pub mod protocol;
pub mod serve;
