//! The four subcommands.

use crate::args::Args;
use aeetes_core::{extract_batch, load_engine, save_engine, suppress_overlaps, Aeetes, AeetesConfig, EditIndex, Match};
use aeetes_rules::{DeriveConfig, RuleSet};
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::fs;
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
aeetes — approximate entity extraction with synonyms (EDBT 2019)

USAGE:
    aeetes build    --dict FILE --rules FILE --out ENGINE [--max-derived N]
    aeetes extract  --engine ENGINE --docs FILE [--tau F] [--metric NAME]
                    [--edit K] [--threads N] [--best] [--format tsv|jsonl]
    aeetes stats    --engine ENGINE
    aeetes generate --out DIR [--profile pubmed|dbworld|usjob] [--scale F] [--seed N]
    aeetes demo

FILES:
    dictionary  one entity per line
    rules       lhs <TAB> rhs [<TAB> weight-in-(0,1]]
    documents   one document per line
";

fn read_lines(path: &str) -> Result<Vec<String>, String> {
    let body = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(body.lines().map(str::to_string).filter(|l| !l.trim().is_empty()).collect())
}

/// `aeetes build`
pub fn build(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let dict_path = args.required("dict")?;
    let rules_path = args.required("rules")?;
    let out_path = args.required("out")?;
    let max_derived: usize = args.parse_or("max-derived", DeriveConfig::default().max_derived)?;

    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for line in read_lines(dict_path)? {
        dict.push(&line, &tokenizer, &mut interner);
    }

    let mut rules = RuleSet::new();
    let mut skipped = 0usize;
    for (no, line) in read_lines(rules_path)?.iter().enumerate() {
        let mut parts = line.split('\t');
        let (Some(lhs), Some(rhs)) = (parts.next(), parts.next()) else {
            return Err(format!("{rules_path}:{}: expected `lhs<TAB>rhs[<TAB>weight]`", no + 1));
        };
        let weight: f64 = match parts.next() {
            Some(w) => w.trim().parse().map_err(|e| format!("{rules_path}:{}: weight: {e}", no + 1))?,
            None => 1.0,
        };
        if rules.push_weighted_str(lhs, rhs, weight, &tokenizer, &mut interner).is_err() {
            skipped += 1; // empty/trivial rule lines are reported, not fatal
        }
    }
    if skipped > 0 {
        eprintln!("note: skipped {skipped} empty or self-referential rule line(s)");
    }

    let config = AeetesConfig { derive: DeriveConfig { max_derived, ..DeriveConfig::default() }, ..AeetesConfig::default() };
    let engine = Aeetes::build(dict, &rules, config);
    let bytes = save_engine(&engine, &interner);
    fs::write(out_path, &bytes).map_err(|e| format!("{out_path}: {e}"))?;
    eprintln!(
        "built engine: {} entities, {} rules, {} derived variants, {} index entries → {out_path} ({} bytes)",
        engine.dictionary().len(),
        rules.len(),
        engine.derived().len(),
        engine.index().total_entries(),
        bytes.len()
    );
    Ok(())
}

fn load(path: &str) -> Result<(Aeetes, Interner), String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    load_engine(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// `aeetes extract`
pub fn extract(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["best"])?;
    let engine_path = args.required("engine")?;
    let docs_path = args.required("docs")?;
    let tau: f64 = args.parse_or("tau", 0.8)?;
    let threads: usize = args.parse_or("threads", 1)?;
    let format = args.optional("format").unwrap_or("tsv");
    let metric = match args.optional("metric").unwrap_or("jaccard") {
        "jaccard" => Metric::Jaccard,
        "dice" => Metric::Dice,
        "cosine" => Metric::Cosine,
        "overlap" => Metric::Overlap,
        other => return Err(format!("unknown metric `{other}` (jaccard|dice|cosine|overlap)")),
    };
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(format!("--tau must be in (0, 1], got {tau}"));
    }

    let (engine, mut interner) = load(engine_path)?;
    let tokenizer = Tokenizer::default();
    let docs: Vec<Document> =
        read_lines(docs_path)?.iter().map(|l| Document::parse(l, &tokenizer, &mut interner)).collect();

    // Edit-distance mode (--edit K): character-level ED-AR extraction.
    if let Some(k) = args.optional("edit") {
        let k: usize = k.parse().map_err(|e| format!("--edit: {e}"))?;
        let index = EditIndex::build(&engine, &interner, 2);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let mut total = 0usize;
        for (doc_id, doc) in docs.iter().enumerate() {
            for m in index.extract(&engine, doc, &interner, k) {
                total += 1;
                let entity_raw = &engine.dictionary().record(m.entity).raw;
                let text = doc.text_of(m.span).unwrap_or_default();
                writeln!(out, "{doc_id}\t{}\t{}\ted={}\t{}\t{}", m.span.start, m.span.len, m.distance, entity_raw, text)
                    .map_err(|e| e.to_string())?;
            }
        }
        eprintln!("{total} match(es) within edit distance {k}");
        return Ok(());
    }

    // Metric override re-runs extraction per doc (batch helper is
    // Jaccard-config driven); with the default metric we use the batch path.
    let results: Vec<Vec<Match>> = if metric == Metric::Jaccard {
        extract_batch(&engine, &docs, tau, threads)
    } else {
        docs.iter().map(|d| engine.extract_with_metric(d, tau, metric).0).collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut total = 0usize;
    for (doc_id, matches) in results.into_iter().enumerate() {
        let matches = if args.switch("best") { suppress_overlaps(matches) } else { matches };
        for m in matches {
            total += 1;
            let entity_raw = &engine.dictionary().record(m.entity).raw;
            let text = docs[doc_id].text_of(m.span).unwrap_or_default();
            match format {
                "jsonl" => {
                    let row = serde_json::json!({
                        "doc": doc_id,
                        "start": m.span.start,
                        "len": m.span.len,
                        "score": m.score,
                        "entity": m.entity.0,
                        "entity_text": entity_raw,
                        "matched_text": text,
                    });
                    writeln!(out, "{row}").map_err(|e| e.to_string())?;
                }
                "tsv" => {
                    writeln!(
                        out,
                        "{doc_id}\t{}\t{}\t{:.4}\t{}\t{}",
                        m.span.start, m.span.len, m.score, entity_raw, text
                    )
                    .map_err(|e| e.to_string())?;
                }
                other => return Err(format!("unknown format `{other}` (tsv|jsonl)")),
            }
        }
    }
    eprintln!("{total} match(es) at τ = {tau} ({metric})");
    Ok(())
}

/// `aeetes stats`
pub fn stats(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let (engine, interner) = load(args.required("engine")?)?;
    let st = engine.derived().stats();
    println!("entities            {}", engine.dictionary().len());
    println!("derived variants    {}", engine.derived().len());
    println!("interned tokens     {}", interner.len());
    println!("index entries       {}", engine.index().total_entries());
    println!("index size (bytes)  {}", engine.index().size_bytes());
    println!("avg |A(e)|          {:.2}", st.avg_selected());
    println!("truncated entities  {}", st.truncated_entities);
    println!("min/max entity set  {:?} / {:?}", engine.index().min_set_len(), engine.index().max_set_len());
    Ok(())
}

/// `aeetes generate`: write a synthetic calibrated corpus as CLI-ready files.
pub fn generate_cmd(argv: &[String]) -> Result<(), String> {
    use aeetes_datagen::{generate, write_files, DatasetProfile};
    let args = Args::parse(argv, &[])?;
    let out = args.required("out")?;
    let scale: f64 = args.parse_or("scale", 0.05)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let profile = match args.optional("profile").unwrap_or("pubmed") {
        "pubmed" => DatasetProfile::pubmed_like(),
        "dbworld" => DatasetProfile::dbworld_like(),
        "usjob" => DatasetProfile::usjob_like(),
        other => return Err(format!("unknown profile `{other}` (pubmed|dbworld|usjob)")),
    };
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let data = generate(&profile.scaled(scale), seed);
    write_files(&data, std::path::Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "wrote {out}/dict.txt ({} entities), rules.tsv ({} rules), docs.txt ({} docs), gold.tsv ({} mentions)",
        data.dictionary.len(),
        data.rules.len(),
        data.documents.len(),
        data.gold.len()
    );
    Ok(())
}

/// `aeetes demo`: the paper's Figure 1 scenario, no files needed.
pub fn demo() -> Result<(), String> {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    dict.push("University of Wisconsin Madison", &tokenizer, &mut interner);
    dict.push("Purdue University USA", &tokenizer, &mut interner);
    dict.push("UQ AU", &tokenizer, &mut interner);
    let mut rules = RuleSet::new();
    for (l, r) in [
        ("UQ", "University of Queensland"),
        ("USA", "United States"),
        ("AU", "Australia"),
        ("UW", "University of Wisconsin"),
    ] {
        rules.push_str(l, r, &tokenizer, &mut interner).expect("valid demo rule");
    }
    let engine = Aeetes::build(dict, &rules, AeetesConfig::default());
    let doc = Document::parse(
        "PC members: Alice (UW Madison), Bob (Purdue University United States), \
         Carol (Purdue University USA), Dan (University of Queensland Australia).",
        &tokenizer,
        &mut interner,
    );
    println!("document: {}\n", doc.raw);
    for m in suppress_overlaps(engine.extract(&doc, 0.9)) {
        println!(
            "  {:5.3}  \"{}\"  →  {}",
            m.score,
            doc.text_of(m.span).unwrap_or("<span>"),
            engine.dictionary().record(m.entity).raw
        );
    }
    Ok(())
}
