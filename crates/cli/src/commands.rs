//! The subcommands.
//!
//! Every command returns `Result<i32, String>`: the `i32` is the process
//! exit code (`EXIT_OK` for complete results, `EXIT_PARTIAL` when a
//! resource budget truncated extraction), an `Err` message exits with
//! `1` (failure).

use crate::args::Args;
use aeetes_core::{
    extract_segment_scratched, extract_top_k_with, load_sharded, save_engine, save_sharded, suppress_overlaps, Aeetes, AeetesConfig, BatchOptions,
    EditIndex, ExtractBackend, ExtractLimits, ExtractScratch, ExtractStats, Match, Stage, StageSlots, Strategy,
};
use aeetes_pool::{extract_batch_with, Pool};
use aeetes_rules::{DeriveConfig, RuleSet};
use aeetes_shard::ShardedEngine;
use aeetes_sim::Metric;
use aeetes_stream::{StreamExtractor, StreamMatch};
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::fs;
use std::io::Write;
use std::time::Duration;

/// Exit code: command completed with full results.
pub const EXIT_OK: i32 = 0;
/// Exit code: extraction succeeded but at least one document's results
/// were truncated by `--timeout` / `--max-candidates` / `--max-matches`.
pub const EXIT_PARTIAL: i32 = 2;

/// Top-level usage text.
pub const USAGE: &str = "\
aeetes — approximate entity extraction with synonyms (EDBT 2019)

USAGE:
    aeetes build    --dict FILE --rules FILE --out ENGINE [--max-derived N]
                    [--shards N] [--frozen]
    aeetes extract  --engine ENGINE --docs FILE [--tau F] [--metric NAME]
                    [--edit K] [--threads N] [--best] [--top-k K]
                    [--format tsv|jsonl] [--timeout SECS]
                    [--max-candidates N] [--max-matches N]
    aeetes extract  --engine ENGINE --stream [--tau F] [--format tsv|jsonl]
    aeetes serve    --engine ENGINE [--shards N] [--frozen] [--listen ADDR:PORT]
                    [--metrics-listen ADDR:PORT] [--workers N | --threads N] [--queue N]
                    [--max-doc-bytes N] [--timeout-ceiling SECS]
                    [--max-matches N] [--max-candidates N] [--drain SECS]
                    [--idle-timeout SECS] [--max-conns N] [--wal FILE]
    aeetes fleet    --engine ENGINE [--replicas N | --replica ADDR:PORT ...]
                    [--listen ADDR:PORT] [--retries N] [--health-interval SECS]
                    [--wal FILE] [--compact-threshold N]
                    (plus any serve flag, forwarded to spawned replicas)
    aeetes wal      (inspect | compact) --wal FILE [--records] [--json]
                    [--engine ENGINE]
    aeetes profile  (--engine ENGINE --doc FILE |
                     [--profile pubmed|dbworld|usjob] [--scale F] [--seed N])
                    [--tau F] [--runs N] [--warmup N] [--docs N]
    aeetes stats    --engine ENGINE
    aeetes dict     info FILE [--json]
    aeetes generate --out DIR [--profile pubmed|dbworld|usjob] [--scale F] [--seed N]
    aeetes demo

Flags take `--name value` or `--name=value`.

FILES:
    dictionary  one entity per line
    rules       lhs <TAB> rhs [<TAB> weight-in-(0,1]]
    documents   one document per line

`serve` answers newline-delimited JSON requests (one per line) on stdin or,
with --listen, per TCP connection; see README \"Serving\" for the protocol.
It always runs the sharded engine: --shards N fans extraction over N shards
(0 = available parallelism; omitted = the artifact's stored segment count),
and a `{\"type\":\"reload\"}` request applies a dictionary delta as a new
generation without dropping in-flight requests.

`build --shards N` writes a sharded artifact (N = 0 picks the machine's
available parallelism); without the flag a v2 single-engine artifact is
written. `build --frozen` instead writes a format v5 *frozen* artifact:
the built indexes laid out as flat little-endian arenas, so a server can
memory-map the file and answer its first request without deserializing
anything — N serve processes share one page cache. Every command
auto-detects the artifact format; `serve --frozen` additionally *requires*
a v5 artifact (it fails fast instead of silently paying a v4 rebuild).
`aeetes dict info FILE` prints any artifact's version, generation,
entity/rule/token counts and (for v5) per-section sizes without building
the engine.

`extract --top-k K` returns only the K best-scoring matches per document,
ordered by score, using bound-pruned search: the running k-th best score
ratchets the effective threshold upward, so small K examines far fewer
candidates than full extraction. `extract --stream` reads ONE document
from stdin in chunks (of any size; token and UTF-8 boundaries may fall
anywhere) and prints each match as soon as no future input can change it
— identical results to whole-document extraction, flat memory. The serve
protocol exposes both: `\"top_k\"` on extract requests, and
`{\"type\":\"stream\"}` verbs open/feed/flush/close for per-connection
incremental streams (see README \"Streaming & top-k\").

`serve --metrics-listen` exposes the metric registry over HTTP: `/metrics`
in Prometheus text format, `/metrics.json` as JSON. The same snapshot is
available on the protocol stream via `{\"type\":\"metrics\"}`.

`fleet` runs a fault-tolerant coordinator over N serve replicas: it speaks
the same protocol, load-balances extracts, retries retryable failures on a
different replica, respawns crashed replicas, and ships `reload` deltas
two-phase so the fleet never serves mixed generations; see README
\"Cluster\".

`--wal FILE` (serve and fleet) makes reloads crash-safe: every activated
delta is appended to a write-ahead log and fsynced *before* the ok ack,
and a restart replays the log's committed suffix over the engine artifact
— an acknowledged generation survives even SIGKILL or power loss. A fleet
coordinator additionally compacts the log into a fresh artifact every
--compact-threshold deltas (needs --engine). `aeetes wal inspect` reports
a log's committed state (repairing any torn tail, exactly as recovery
would); `aeetes wal compact --wal FILE --engine ENGINE` folds the log into
the artifact offline and resets it. Compaction preserves the artifact's
format: a frozen (v5) engine is rewritten frozen, anything older stays
v4. See README \"Durability\".

`profile` runs all four candidate-generation strategies over the same
documents and prints a per-stage timing table (tokenize, remap,
prefix_build, prefix_update, window_slide, candidate_gen, verify) plus
work counters. With --engine/--doc it profiles your engine on your
documents; without, it builds a synthetic corpus (--profile/--scale,
deterministic under --seed) so runs are reproducible.

EXIT CODES:
    0  success, complete results
    1  failure (bad flags, unreadable/corrupt files, internal error)
    2  success, but some document hit a --timeout/--max-candidates/
       --max-matches budget and returned partial (still exact) results
";

fn read_lines(path: &str) -> Result<Vec<String>, String> {
    let body = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(body.lines().map(str::to_string).filter(|l| !l.trim().is_empty()).collect())
}

/// `aeetes build`
pub fn build(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(argv, &["frozen"], &["dict", "rules", "out", "max-derived", "shards"])?;
    let dict_path = args.required("dict")?;
    let rules_path = args.required("rules")?;
    let out_path = args.required("out")?;
    let max_derived: usize = args.parse_or("max-derived", DeriveConfig::default().max_derived)?;

    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for line in read_lines(dict_path)? {
        dict.push(&line, &tokenizer, &mut interner);
    }

    let mut rules = RuleSet::new();
    let mut skipped = 0usize;
    for (no, line) in read_lines(rules_path)?.iter().enumerate() {
        let mut parts = line.split('\t');
        let (Some(lhs), Some(rhs)) = (parts.next(), parts.next()) else {
            return Err(format!("{rules_path}:{}: expected `lhs<TAB>rhs[<TAB>weight]`", no + 1));
        };
        let weight: f64 = match parts.next() {
            Some(w) => w.trim().parse().map_err(|e| format!("{rules_path}:{}: weight: {e}", no + 1))?,
            None => 1.0,
        };
        if rules.push_weighted_str(lhs, rhs, weight, &tokenizer, &mut interner).is_err() {
            skipped += 1; // empty/trivial rule lines are reported, not fatal
        }
    }
    if skipped > 0 {
        eprintln!("note: skipped {skipped} empty or self-referential rule line(s)");
    }

    let config = AeetesConfig {
        derive: DeriveConfig { max_derived, ..DeriveConfig::default() },
        ..AeetesConfig::default()
    };

    // --frozen: build the sharded engine, then persist it as a format v5
    // frozen artifact — the *built* indexes as flat mmap-able arenas, not
    // the rebuild-on-load source data of v3/v4.
    if args.switch("frozen") {
        let n: usize = match args.optional("shards") {
            Some(sh) => sh.parse().map_err(|e| format!("--shards: {e}"))?,
            None => 1,
        };
        let engine = ShardedEngine::build(dict, &rules, &interner, config, n);
        let generation = engine.snapshot();
        let bytes = engine.freeze();
        atomic_write(out_path, &bytes)?;
        eprintln!(
            "built frozen engine (v5): {} entities, {} rules, {} derived variants, {} shards → {out_path} ({} bytes)",
            generation.dictionary().len(),
            rules.len(),
            generation.variants(),
            generation.shard_count(),
            bytes.len()
        );
        return Ok(EXIT_OK);
    }

    // --shards: build the sharded engine (per-shard derivation + indexing in
    // parallel) and persist it as a format v3 segmented artifact.
    if let Some(sh) = args.optional("shards") {
        let n: usize = sh.parse().map_err(|e| format!("--shards: {e}"))?;
        let engine = ShardedEngine::build(dict, &rules, &interner, config, n);
        let generation = engine.snapshot();
        let bytes = save_sharded(&engine.to_parts());
        atomic_write(out_path, &bytes)?;
        eprintln!(
            "built sharded engine: {} entities, {} rules, {} derived variants, {} shards → {out_path} ({} bytes)",
            generation.dictionary().len(),
            rules.len(),
            generation.variants(),
            generation.shard_count(),
            bytes.len()
        );
        return Ok(EXIT_OK);
    }

    let engine = Aeetes::build(dict, &rules, &interner, config);
    let bytes = save_engine(&engine, &interner);
    atomic_write(out_path, &bytes)?;
    eprintln!(
        "built engine: {} entities, {} rules, {} derived variants, {} index entries → {out_path} ({} bytes)",
        engine.dictionary().len(),
        rules.len(),
        engine.derived().len(),
        engine.index().total_entries(),
        bytes.len()
    );
    Ok(EXIT_OK)
}

/// Writes `bytes` to `path` atomically *and durably*: the temp file is
/// fsynced before the rename and the parent directory after it, so a crash
/// (or power loss) at any point leaves either the old contents or the
/// complete new ones — never a truncated engine under the final name.
fn atomic_write(path: &str, bytes: &[u8]) -> Result<(), String> {
    aeetes_core::atomic_replace(std::path::Path::new(path), bytes).map_err(|e| format!("{path}: {e}"))
}

/// Reads the artifact's format version from the 8-byte header prefix —
/// enough to pick a load path without touching the rest of the file.
fn sniff_version(path: &str) -> Result<u32, String> {
    use std::io::Read;
    let mut f = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut head = [0u8; 8];
    f.read_exact(&mut head).map_err(|e| format!("{path}: reading artifact header: {e}"))?;
    if &head[..4] != b"AEET" {
        return Err(format!("{path}: not an AEET engine artifact (bad magic)"));
    }
    Ok(u32::from_le_bytes(head[4..8].try_into().expect("4-byte version")))
}

/// Loads any artifact format as a sharded engine: v5 is opened frozen
/// (memory-mapped, indexes adopted zero-copy when the shard count allows),
/// v1–v4 deserialize and rebuild as before.
fn load_any(path: &str, shards: Option<usize>) -> Result<ShardedEngine, String> {
    if sniff_version(path)? == 5 {
        let parts = aeetes_core::open_frozen(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        ShardedEngine::from_frozen(parts, shards).map_err(|e| format!("{path}: {e}"))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let parts = load_sharded(&bytes).map_err(|e| format!("{path}: {e}"))?;
        ShardedEngine::from_parts(parts, shards).map_err(|e| format!("{path}: {e}"))
    }
}

/// Loads any artifact format as [`aeetes_core::ShardedParts`] — the common
/// currency of the inspection commands (`stats`, `profile`, `extract`'s
/// monolithic path), which merge segments rather than serve them.
fn load_parts_any(path: &str) -> Result<aeetes_core::ShardedParts, String> {
    if sniff_version(path)? == 5 {
        let parts = aeetes_core::open_frozen(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        Ok(frozen_to_parts(parts))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        load_sharded(&bytes).map_err(|e| format!("{path}: {e}"))
    }
}

/// Downgrades opened frozen parts to the v3/v4 parts shape (indexes
/// dropped; they rebuild on demand). Used where a command needs the
/// merge-to-monolithic path that `ShardedParts` provides.
fn frozen_to_parts(parts: aeetes_core::FrozenParts) -> aeetes_core::ShardedParts {
    aeetes_core::ShardedParts {
        interner: parts.interner,
        dict: parts.dict,
        removed: parts.removed,
        rules: parts.rules,
        config: parts.config,
        segments: parts.segments.into_iter().map(|s| s.dd).collect(),
        generation: parts.generation,
    }
}

fn load(path: &str) -> Result<(Aeetes, Interner), String> {
    load_parts_any(path)?.into_single().map_err(|e| format!("{path}: {e}"))
}

/// `aeetes extract`
pub fn extract(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(
        argv,
        &["best", "stream"],
        &[
            "engine",
            "docs",
            "tau",
            "threads",
            "format",
            "metric",
            "timeout",
            "max-candidates",
            "max-matches",
            "edit",
            "top-k",
        ],
    )?;
    let engine_path = args.required("engine")?;
    let tau: f64 = args.parse_or("tau", 0.8)?;
    let threads: usize = args.parse_or("threads", 1)?;
    // Size the process-wide worker pool to the request: `--threads` means
    // the same thing here as `--workers` does for serve — one pool.
    if threads > 1 {
        Pool::configure_global(threads);
    }
    let format = args.optional("format").unwrap_or("tsv");
    let metric = match args.optional("metric").unwrap_or("jaccard") {
        "jaccard" => Metric::Jaccard,
        "dice" => Metric::Dice,
        "cosine" => Metric::Cosine,
        "overlap" => Metric::Overlap,
        other => return Err(format!("unknown metric `{other}` (jaccard|dice|cosine|overlap)")),
    };
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(format!("--tau must be in (0, 1], got {tau}"));
    }
    let timeout: Option<f64> = match args.optional("timeout") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("--timeout: {e}"))?),
    };
    if let Some(t) = timeout {
        if !(t > 0.0 && t.is_finite()) {
            return Err(format!("--timeout must be a positive number of seconds, got {t}"));
        }
    }
    let limits = ExtractLimits {
        deadline: timeout.map(Duration::from_secs_f64),
        max_candidates: match args.optional("max-candidates") {
            None => None,
            Some(v) => Some(v.parse().map_err(|e| format!("--max-candidates: {e}"))?),
        },
        max_matches: match args.optional("max-matches") {
            None => None,
            Some(v) => Some(v.parse().map_err(|e| format!("--max-matches: {e}"))?),
        },
        ..ExtractLimits::UNLIMITED
    };
    let top_k: Option<usize> = match args.optional("top-k") {
        None => None,
        Some(v) => {
            let k: usize = v.parse().map_err(|e| format!("--top-k: {e}"))?;
            if k == 0 {
                return Err("--top-k must be at least 1".into());
            }
            if args.optional("edit").is_some() {
                return Err("--top-k and --edit are incompatible (edit-distance mode has no similarity score to rank)".into());
            }
            if args.switch("best") {
                return Err("--top-k and --best are incompatible on the CLI; use the serve protocol to compose them".into());
            }
            if limits != ExtractLimits::UNLIMITED {
                return Err("--top-k is exact and incompatible with --timeout/--max-candidates/--max-matches budgets".into());
            }
            Some(k)
        }
    };

    // Streaming mode: read stdin chunk-wise, emit matches as they settle.
    if args.switch("stream") {
        for (flag, present) in [
            ("--docs", args.optional("docs").is_some()),
            ("--top-k", top_k.is_some()),
            ("--edit", args.optional("edit").is_some()),
            ("--best", args.switch("best")),
            ("--metric", args.optional("metric").is_some()),
        ] {
            if present {
                return Err(format!("--stream reads one document from stdin and emits matches incrementally; {flag} does not apply"));
            }
        }
        let format = args.optional("format").unwrap_or("tsv");
        let (engine, mut interner) = load(engine_path)?;
        return extract_stream(&engine, &mut interner, tau, format);
    }

    let docs_path = args.required("docs")?;
    let (engine, mut interner) = load(engine_path)?;
    let tokenizer = Tokenizer::default();
    let docs: Vec<Document> = read_lines(docs_path)?.iter().map(|l| Document::parse(l, &tokenizer, &mut interner)).collect();

    // Edit-distance mode (--edit K): character-level ED-AR extraction.
    if let Some(k) = args.optional("edit") {
        let k: usize = k.parse().map_err(|e| format!("--edit: {e}"))?;
        let index = EditIndex::build(&engine, &interner, 2);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let mut total = 0usize;
        for (doc_id, doc) in docs.iter().enumerate() {
            for m in index.extract(&engine, doc, &interner, k) {
                total += 1;
                let entity_raw = &engine.dictionary().record(m.entity).raw;
                let text = doc.text_of(m.span).unwrap_or_default();
                writeln!(out, "{doc_id}\t{}\t{}\ted={}\t{}\t{}", m.span.start, m.span.len, m.distance, entity_raw, text)
                    .map_err(|e| e.to_string())?;
            }
        }
        eprintln!("{total} match(es) within edit distance {k}");
        return Ok(EXIT_OK);
    }

    // Metric override re-runs extraction per doc (the batch helper is
    // config-metric driven); with the default metric we use the
    // fault-isolated batch path. Both paths honour the limits.
    let mut truncated_docs = 0usize;
    let results: Vec<Vec<Match>> = if let Some(k) = top_k {
        // Bound-pruned top-k: exact, budget-free, and ordered by score
        // (best first) instead of by span.
        docs.iter().map(|d| extract_top_k_with(&engine, d, k, tau, metric).0).collect()
    } else if metric == Metric::Jaccard {
        let opts = BatchOptions { threads, limits, ..BatchOptions::default() };
        let mut out = Vec::with_capacity(docs.len());
        for (i, r) in extract_batch_with(&engine, &docs, tau, &opts).into_iter().enumerate() {
            let outcome = r.map_err(|e| format!("document {i}: {e}"))?;
            truncated_docs += outcome.truncated as usize;
            out.push(outcome.matches);
        }
        out
    } else {
        let mut scratch = ExtractScratch::new();
        docs.iter()
            .map(|d| {
                let outcome = engine.extract_scratched_metric(d, tau, metric, &limits, None, &mut scratch);
                truncated_docs += outcome.truncated as usize;
                outcome.matches.to_vec()
            })
            .collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut total = 0usize;
    for (doc_id, matches) in results.into_iter().enumerate() {
        let matches = if args.switch("best") { suppress_overlaps(matches) } else { matches };
        for m in matches {
            total += 1;
            let entity_raw = &engine.dictionary().record(m.entity).raw;
            let text = docs[doc_id].text_of(m.span).unwrap_or_default();
            match format {
                "jsonl" => {
                    let row = serde_json::json!({
                        "doc": doc_id,
                        "start": m.span.start,
                        "len": m.span.len,
                        "score": m.score,
                        "entity": m.entity.0,
                        "entity_text": entity_raw,
                        "matched_text": text,
                    });
                    writeln!(out, "{row}").map_err(|e| e.to_string())?;
                }
                "tsv" => {
                    writeln!(out, "{doc_id}\t{}\t{}\t{:.4}\t{}\t{}", m.span.start, m.span.len, m.score, entity_raw, text)
                        .map_err(|e| e.to_string())?;
                }
                other => return Err(format!("unknown format `{other}` (tsv|jsonl)")),
            }
        }
    }
    eprintln!("{total} match(es) at τ = {tau} ({metric})");
    if truncated_docs > 0 {
        eprintln!("warning: {truncated_docs} document(s) hit a resource budget; results are partial");
        return Ok(EXIT_PARTIAL);
    }
    Ok(EXIT_OK)
}

/// `aeetes extract --stream`: treats stdin as one unbounded document, fed
/// to the incremental extractor in fixed-size byte chunks (split points
/// are arbitrary — the extractor carries partial UTF-8 sequences and
/// partial tokens across them). Matches print as soon as they *settle*
/// (no future input can extend or re-score them), so output is available
/// long before EOF; the final flush emits the tail. Match rows carry byte
/// offsets into the stream instead of the matched text — the stream is
/// not retained.
fn extract_stream(engine: &Aeetes, interner: &mut Interner, tau: f64, format: &str) -> Result<i32, String> {
    use std::io::Read;
    if format != "tsv" && format != "jsonl" {
        return Err(format!("unknown format `{format}` (tsv|jsonl)"));
    }
    let tokenizer = Tokenizer::default();
    let mut stream = StreamExtractor::new(engine, tau);
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut buf = vec![0u8; 64 * 1024];
    let mut total = 0usize;
    loop {
        let n = match input.read(&mut buf) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("stdin: {e}")),
        };
        if n == 0 {
            break;
        }
        let matches = stream.feed(engine, &tokenizer, interner, &buf[..n]);
        total += matches.len();
        write_stream_matches(&mut out, engine, matches, format)?;
    }
    let matches = stream.finish(engine, &tokenizer, interner);
    total += matches.len();
    write_stream_matches(&mut out, engine, matches, format)?;
    eprintln!("{total} match(es) at τ = {tau} ({} chunk(s), {} token(s) streamed)", stream.chunks_fed(), stream.tokens_seen());
    Ok(EXIT_OK)
}

/// Prints one batch of settled stream matches and flushes, so a consumer
/// piping the output sees matches as they settle, not at EOF.
fn write_stream_matches(out: &mut impl Write, engine: &Aeetes, matches: &[StreamMatch], format: &str) -> Result<(), String> {
    for m in matches {
        let entity_raw = &engine.dictionary().record(m.entity).raw;
        match format {
            "jsonl" => {
                let row = serde_json::json!({
                    "start": m.start,
                    "len": m.len,
                    "score": m.score,
                    "entity": m.entity.0,
                    "entity_text": entity_raw,
                    "byte_start": m.byte_start,
                    "byte_end": m.byte_end,
                });
                writeln!(out, "{row}").map_err(|e| e.to_string())?;
            }
            _ => {
                writeln!(out, "{}\t{}\t{:.4}\t{}\t{}..{}", m.start, m.len, m.score, entity_raw, m.byte_start, m.byte_end)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    if !matches.is_empty() {
        out.flush().map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// `aeetes serve`: long-lived NDJSON extraction server (see `crate::serve`).
pub fn serve_cmd(argv: &[String]) -> Result<i32, String> {
    use crate::protocol::Ceilings;
    use crate::serve::{serve, ServeOptions};
    let args = Args::parse(
        argv,
        &["frozen"],
        &[
            "engine",
            "shards",
            "listen",
            "metrics-listen",
            "workers",
            "threads",
            "queue",
            "max-doc-bytes",
            "timeout-ceiling",
            "max-matches",
            "max-candidates",
            "drain",
            "idle-timeout",
            "max-conns",
            "wal",
        ],
    )?;
    let engine_path = args.required("engine")?;
    let shards: Option<usize> = match args.optional("shards") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("--shards: {e}"))?),
    };
    let defaults = ServeOptions::default();
    let timeout_ceiling: f64 = args.parse_or("timeout-ceiling", defaults.ceilings.max_timeout.as_secs_f64())?;
    let drain: f64 = args.parse_or("drain", defaults.drain.as_secs_f64())?;
    for (name, v) in [("timeout-ceiling", timeout_ceiling), ("drain", drain)] {
        if !(v > 0.0 && v.is_finite()) {
            return Err(format!("--{name} must be a positive number of seconds, got {v}"));
        }
    }
    // --idle-timeout 0 disables the idle close (a coordinator's long-lived
    // control connections want that), so zero is valid here.
    let idle_timeout: f64 = args.parse_or("idle-timeout", defaults.idle_timeout.as_secs_f64())?;
    if !(idle_timeout >= 0.0 && idle_timeout.is_finite()) {
        return Err(format!("--idle-timeout must be a non-negative number of seconds, got {idle_timeout}"));
    }
    let opts = ServeOptions {
        listen: args.optional("listen").map(str::to_string),
        metrics_listen: args.optional("metrics-listen").map(str::to_string),
        // `--threads` is an alias for `--workers`: both size the one
        // process-wide worker pool, same as `extract --threads`.
        workers: match args.optional("threads") {
            Some(v) => v.parse().map_err(|e| format!("--threads: {e}"))?,
            None => args.parse_or("workers", defaults.workers)?,
        },
        queue: args.parse_or("queue", defaults.queue)?,
        ceilings: Ceilings {
            max_doc_bytes: args.parse_or("max-doc-bytes", defaults.ceilings.max_doc_bytes)?,
            max_timeout: Duration::from_secs_f64(timeout_ceiling),
            max_matches: args.parse_or("max-matches", defaults.ceilings.max_matches)?,
            max_candidates: args.parse_or("max-candidates", defaults.ceilings.max_candidates)?,
        },
        drain: Duration::from_secs_f64(drain),
        idle_timeout: Duration::from_secs_f64(idle_timeout),
        max_conns: args.parse_or("max-conns", defaults.max_conns)?,
        wal: args.optional("wal").map(std::path::PathBuf::from),
    };
    // --frozen asserts the artifact is the v5 mmap format (zero-copy start);
    // without the flag serve auto-detects and loads whatever it is given.
    if args.switch("frozen") {
        let version = sniff_version(engine_path)?;
        if version != 5 {
            return Err(format!(
                "{engine_path}: --frozen needs a v5 frozen artifact, this file is v{version} (build one with `aeetes build --frozen`)"
            ));
        }
    }
    let engine = load_any(engine_path, shards)?;
    serve(engine, &opts)?;
    Ok(EXIT_OK)
}

/// `aeetes fleet`: coordinator over a replicated serve fleet.
pub fn fleet_cmd(argv: &[String]) -> Result<i32, String> {
    use aeetes_cluster::{run_fleet, FleetOptions, ReplicaSpec};
    let args = Args::parse(
        argv,
        &["frozen"],
        &[
            // Coordinator flags.
            "engine",
            "replicas",
            "replica",
            "listen",
            "retries",
            "request-timeout",
            "health-interval",
            "probe-timeout",
            "reload-timeout",
            "drain",
            "wal",
            "compact-threshold",
            // Serve flags forwarded verbatim to spawned replicas.
            "shards",
            "workers",
            "threads",
            "queue",
            "max-doc-bytes",
            "timeout-ceiling",
            "max-matches",
            "max-candidates",
            "max-conns",
        ],
    )?;
    let defaults = FleetOptions::default();
    let mut replicas: Vec<ReplicaSpec> = Vec::new();
    // --replica addr[,addr...] names externally managed serve processes.
    // Addresses are validated here, at parse time: a typo'd or duplicated
    // endpoint fails the command immediately instead of surfacing later as
    // an endless revive loop against a dead (or doubly-routed) slot.
    if let Some(list) = args.optional("replica") {
        let mut seen = std::collections::HashSet::new();
        for addr in list.split(',').map(str::trim).filter(|a| !a.is_empty()) {
            use std::net::ToSocketAddrs;
            match addr.to_socket_addrs() {
                Ok(mut resolved) => {
                    if resolved.next().is_none() {
                        return Err(format!("--replica {addr}: resolves to no address"));
                    }
                }
                Err(e) => return Err(format!("--replica {addr}: not a usable ADDR:PORT ({e})")),
            }
            if !seen.insert(addr.to_string()) {
                return Err(format!("--replica {addr}: duplicate address; each replica endpoint must be listed once"));
            }
            replicas.push(ReplicaSpec::Remote { addr: addr.to_string() });
        }
    }
    // --replicas N spawns N children (default 3 when nothing remote given).
    let spawn_default = if replicas.is_empty() { 3 } else { 0 };
    let spawn_count: usize = args.parse_or("replicas", spawn_default)?;
    if spawn_count > 0 {
        let engine = args.required("engine")?; // children need the artifact
        let program = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
        let mut child_args = vec![
            "--engine".to_string(),
            engine.to_string(),
            // The OS picks each child's port; the banner reports it.
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            // The coordinator's data connection is idle between bursts and
            // must never be closed under it.
            "--idle-timeout".to_string(),
            "0".to_string(),
        ];
        for flag in [
            "shards",
            "workers",
            "threads",
            "queue",
            "max-doc-bytes",
            "timeout-ceiling",
            "max-matches",
            "max-candidates",
            "max-conns",
        ] {
            if let Some(v) = args.optional(flag) {
                child_args.push(format!("--{flag}"));
                child_args.push(v.to_string());
            }
        }
        if args.switch("frozen") {
            child_args.push("--frozen".to_string());
        }
        for _ in 0..spawn_count {
            replicas.push(ReplicaSpec::Spawn { program: program.clone(), args: child_args.clone() });
        }
    }
    if replicas.is_empty() {
        return Err("a fleet needs at least one replica: pass --replicas N and/or --replica ADDR".into());
    }
    let secs = |name: &str, default: Duration| -> Result<Duration, String> {
        let v: f64 = args.parse_or(name, default.as_secs_f64())?;
        if !(v > 0.0 && v.is_finite()) {
            return Err(format!("--{name} must be a positive number of seconds, got {v}"));
        }
        Ok(Duration::from_secs_f64(v))
    };
    let wal = args.optional("wal").map(std::path::PathBuf::from);
    // Compaction rewrites the replicas' engine artifact, so it needs the
    // artifact path; with remote-only replicas and no --engine the log
    // still makes reloads durable, it just never compacts.
    let compactor: Option<aeetes_cluster::Compactor> = match (&wal, args.optional("engine")) {
        (Some(_), Some(engine_path)) => {
            let path = engine_path.to_string();
            Some(std::sync::Arc::new(move |deltas: &[serde_json::Value], base: u64, target: u64| {
                compact_artifact(&path, deltas, base, target)
            }))
        }
        _ => None,
    };
    let opts = FleetOptions {
        listen: args.optional("listen").unwrap_or("127.0.0.1:0").to_string(),
        replicas,
        // 0 = one attempt per replica (the coordinator's default).
        max_attempts: args.parse_or("retries", 0u32)?,
        request_timeout: secs("request-timeout", defaults.request_timeout)?,
        backoff: defaults.backoff,
        health_interval: secs("health-interval", defaults.health_interval)?,
        probe_timeout: secs("probe-timeout", defaults.probe_timeout)?,
        reload_timeout: secs("reload-timeout", defaults.reload_timeout)?,
        drain: secs("drain", defaults.drain)?,
        wal,
        compact_threshold: args.parse_or("compact-threshold", defaults.compact_threshold)?,
        compactor,
    };
    run_fleet(opts)?;
    Ok(EXIT_OK)
}

/// Folds logged deltas into the engine artifact: load, apply the suffix the
/// artifact has not yet seen, save at `target`, and atomically (and
/// durably) replace the file. Used by the fleet coordinator's compaction
/// and by `aeetes wal compact`. Delta `i` of `deltas` takes generation
/// `base + i` to `base + i + 1`.
fn compact_artifact(engine_path: &str, deltas: &[serde_json::Value], base: u64, target: u64) -> Result<(), String> {
    // Compaction is format-preserving: a frozen (v5) source is rewritten
    // frozen, anything older is rewritten at the current v4.
    let frozen = sniff_version(engine_path)? == 5;
    let engine = load_any(engine_path, None)?;
    let tokenizer = Tokenizer::default();
    let artifact_gen = engine.generation_id();
    if artifact_gen < base || artifact_gen > target {
        return Err(format!(
            "{engine_path}: artifact is at generation {artifact_gen}, outside the log's [{base}, {target}] — wrong artifact?"
        ));
    }
    for (i, delta) in deltas.iter().enumerate().skip((artifact_gen - base) as usize) {
        let delta = crate::protocol::parse_delta(delta).map_err(|e| format!("{engine_path}: logged delta {i}: {e}"))?;
        let generation = engine
            .apply_update(&delta, &tokenizer)
            .map_err(|e| format!("{engine_path}: applying logged delta {i}: {e}"))?;
        let expected = base + i as u64 + 1;
        if generation.id() != expected {
            return Err(format!("{engine_path}: logged delta {i} rebuilt generation {}, expected {expected}", generation.id()));
        }
    }
    if engine.generation_id() != target {
        return Err(format!("{engine_path}: compaction ended at generation {}, wanted {target}", engine.generation_id()));
    }
    let bytes = if frozen { engine.freeze() } else { save_sharded(&engine.to_parts()) };
    atomic_write(engine_path, &bytes)
}

/// `aeetes wal`: inspect or compact a delta write-ahead log offline.
pub fn wal_cmd(argv: &[String]) -> Result<i32, String> {
    match argv.first().map(String::as_str) {
        Some("inspect") => wal_inspect(&argv[1..]),
        Some("compact") => wal_compact(&argv[1..]),
        Some(other) => Err(format!("unknown wal action `{other}` (inspect|compact)")),
        None => Err("usage: aeetes wal (inspect | compact) --wal FILE ...".into()),
    }
}

/// `aeetes wal inspect`: report the log's committed state. Opening performs
/// the same torn-tail repair recovery would (the discarded bytes were never
/// acknowledged), and reports how many bytes it dropped.
fn wal_inspect(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(argv, &["json", "records"], &["wal"])?;
    let path = args.required("wal")?;
    let (wal, replay) = aeetes_core::Wal::open(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let records: Vec<serde_json::Value> = replay
        .records
        .iter()
        .map(|r| {
            // Payloads are canonical delta JSON; a non-JSON payload is
            // reported as opaque rather than failing the inspection.
            let delta: serde_json::Value = std::str::from_utf8(&r.payload)
                .ok()
                .and_then(|text| serde_json::from_str(text).ok())
                .unwrap_or(serde_json::Value::Null);
            let count = |field: &str| delta.get(field).and_then(serde_json::Value::as_array).map_or(0, Vec::len);
            serde_json::json!({
                "generation": r.generation,
                "payload_bytes": r.payload.len(),
                "add_entities": count("add_entities"),
                "remove_entities": count("remove_entities"),
                "add_rules": count("add_rules"),
            })
        })
        .collect();
    if args.switch("json") {
        let out = serde_json::json!({
            "path": path,
            "base_generation": wal.base_generation(),
            "last_generation": wal.last_generation(),
            "records": wal.record_count(),
            "committed_bytes": wal.len_bytes(),
            "torn_bytes_truncated": replay.truncated_bytes,
            "record_details": records,
        });
        println!("{out}");
        return Ok(EXIT_OK);
    }
    println!("wal                  {path}");
    println!("base generation      {}", wal.base_generation());
    println!("last generation      {}", wal.last_generation());
    println!("committed records    {}", wal.record_count());
    println!("committed bytes      {}", wal.len_bytes());
    println!("torn bytes truncated {}", replay.truncated_bytes);
    if args.switch("records") {
        let field = |r: &serde_json::Value, name: &str| r.get(name).and_then(serde_json::Value::as_u64).unwrap_or(0);
        for r in &records {
            println!(
                "  generation {:>6}  {:>8} bytes  +{} entities  -{} entities  +{} rules",
                field(r, "generation"),
                field(r, "payload_bytes"),
                field(r, "add_entities"),
                field(r, "remove_entities"),
                field(r, "add_rules")
            );
        }
    }
    Ok(EXIT_OK)
}

/// `aeetes wal compact`: fold the log's deltas into the engine artifact
/// (rewritten durably at the log's last generation), then reset the log to
/// a fresh header at that generation. Restarting a server afterwards loads
/// the compacted artifact and replays nothing.
fn wal_compact(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(argv, &[], &["wal", "engine"])?;
    let path = args.required("wal")?;
    let engine_path = args.required("engine")?;
    let (mut wal, replay) = aeetes_core::Wal::open(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    if replay.records.is_empty() {
        eprintln!("{path}: no committed records; nothing to compact");
        return Ok(EXIT_OK);
    }
    let deltas: Vec<serde_json::Value> = replay
        .records
        .iter()
        .map(|r| {
            std::str::from_utf8(&r.payload)
                .map_err(|e| format!("{path}: generation {} record: payload is not UTF-8: {e}", r.generation))
                .and_then(|text| {
                    serde_json::from_str(text).map_err(|e| format!("{path}: generation {} record: payload is not JSON: {e}", r.generation))
                })
        })
        .collect::<Result<_, _>>()?;
    let (base, target) = (wal.base_generation(), wal.last_generation());
    compact_artifact(engine_path, &deltas, base, target)?;
    // The artifact now carries every logged delta; reset the log *after*
    // the artifact is durable. A crash between the two steps is safe:
    // recovery skips records at or below the artifact's generation.
    wal.reset(target).map_err(|e| format!("{path}: resetting after compaction: {e}"))?;
    eprintln!("compacted {} delta(s) into {engine_path} at generation {target}; {path} reset", deltas.len());
    Ok(EXIT_OK)
}

/// `aeetes stats`
pub fn stats(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(argv, &[], &["engine"])?;
    let path = args.required("engine")?;
    // v3+ artifacts carry segments + tombstones + rules; v1/v2 load as one
    // segment and v5 is opened frozen then downgraded to parts, so a single
    // code path reports every layout.
    let parts = load_parts_any(path)?;
    let segment_variants: Vec<usize> = parts.segments.iter().map(aeetes_rules::DerivedDictionary::len).collect();
    let tombstones = parts.removed.len();
    let persisted_rules = parts.rules.len();
    let (engine, interner) = parts.into_single().map_err(|e| format!("{path}: {e}"))?;
    let st = engine.derived().stats();
    println!("entities            {}", engine.dictionary().len());
    println!("derived variants    {}", engine.derived().len());
    println!("interned tokens     {}", interner.len());
    println!("index entries       {}", engine.index().total_entries());
    println!("index size (bytes)  {}", engine.index().size_bytes());
    println!("avg |A(e)|          {:.2}", st.avg_selected());
    println!("truncated entities  {}", st.truncated_entities);
    println!("min/max entity set  {:?} / {:?}", engine.index().min_set_len(), engine.index().max_set_len());
    println!("segments            {} {:?}", segment_variants.len(), segment_variants);
    println!("tombstoned origins  {tombstones}");
    println!("persisted rules     {persisted_rules}");
    Ok(EXIT_OK)
}

/// `aeetes dict`: artifact metadata commands.
pub fn dict_cmd(argv: &[String]) -> Result<i32, String> {
    match argv.first().map(String::as_str) {
        Some("info") => dict_info(&argv[1..]),
        Some(other) => Err(format!("unknown dict action `{other}` (info)")),
        None => Err("usage: aeetes dict info FILE [--json]".into()),
    }
}

/// `aeetes dict info FILE`: headline artifact facts — version, generation,
/// entity/rule/token counts, section sizes — straight from the header,
/// without building an engine (v5 is answered from the section table; v1–v4
/// are skip-scanned).
fn dict_info(argv: &[String]) -> Result<i32, String> {
    let (positional, flags): (Vec<&String>, Vec<&String>) = argv.iter().partition(|a| !a.starts_with("--"));
    let flags: Vec<String> = flags.into_iter().cloned().collect();
    let args = Args::parse(&flags, &["json"], &[])?;
    let path = match positional.as_slice() {
        [p] => p.as_str(),
        [] => return Err("usage: aeetes dict info FILE [--json]".into()),
        _ => return Err("dict info takes exactly one FILE".into()),
    };
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let info = aeetes_core::peek_info(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if args.switch("json") {
        let sections: Vec<serde_json::Value> = info
            .sections
            .iter()
            .map(|s| serde_json::json!({ "kind": s.kind, "segment": s.seg, "bytes": s.len }))
            .collect();
        let out = serde_json::json!({
            "path": path,
            "version": info.version,
            "frozen": info.version == 5,
            "generation": info.generation,
            "entities": info.entities,
            "rules": info.rules,
            "tokens": info.tokens,
            "segments": info.segments,
            "file_bytes": info.file_len,
            "sections": sections,
        });
        println!("{out}");
        return Ok(EXIT_OK);
    }
    let kind = match info.version {
        5 => " (frozen, mmap-able)",
        3 | 4 => " (sharded)",
        _ => " (single engine)",
    };
    println!("artifact            {path}");
    println!("format version      {}{kind}", info.version);
    println!("generation          {}", info.generation);
    println!("entities            {}", info.entities);
    println!("rules               {}", info.rules);
    println!("tokens              {}", info.tokens);
    println!("segments            {}", info.segments);
    println!("file size (bytes)   {}", info.file_len);
    if !info.sections.is_empty() {
        println!("sections:");
        for s in &info.sections {
            let owner = match s.seg {
                None => "global".to_string(),
                Some(i) => format!("seg {i}"),
            };
            println!("  {:<16} {:<8} {:>12} bytes", s.kind, owner, s.len);
        }
    }
    Ok(EXIT_OK)
}

/// `aeetes generate`: write a synthetic calibrated corpus as CLI-ready files.
pub fn generate_cmd(argv: &[String]) -> Result<i32, String> {
    use aeetes_datagen::{generate, write_files, DatasetProfile};
    let args = Args::parse(argv, &[], &["out", "scale", "seed", "profile"])?;
    let out = args.required("out")?;
    let scale: f64 = args.parse_or("scale", 0.05)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let profile = match args.optional("profile").unwrap_or("pubmed") {
        "pubmed" => DatasetProfile::pubmed_like(),
        "dbworld" => DatasetProfile::dbworld_like(),
        "usjob" => DatasetProfile::usjob_like(),
        other => return Err(format!("unknown profile `{other}` (pubmed|dbworld|usjob)")),
    };
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let data = generate(&profile.scaled(scale), seed);
    write_files(&data, std::path::Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "wrote {out}/dict.txt ({} entities), rules.tsv ({} rules), docs.txt ({} docs), gold.tsv ({} mentions)",
        data.dictionary.len(),
        data.rules.len(),
        data.documents.len(),
        data.gold.len()
    );
    Ok(EXIT_OK)
}

/// Human-scale duration for the profile table.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// `aeetes profile`: runs every candidate-generation strategy over the same
/// documents and prints the per-stage timing breakdown recorded in the
/// extraction scratch, plus the work counters — the ablation view of the
/// paper's Figure 10/11, on your own engine and documents (or on a
/// deterministic synthetic corpus when no engine is given).
pub fn profile_cmd(argv: &[String]) -> Result<i32, String> {
    let args = Args::parse(argv, &[], &["engine", "doc", "profile", "scale", "seed", "tau", "runs", "warmup", "docs"])?;
    let tau: f64 = args.parse_or("tau", 0.8)?;
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(format!("--tau must be in (0, 1], got {tau}"));
    }
    let runs: usize = args.parse_or("runs", 5)?;
    let warmup: usize = args.parse_or("warmup", 2)?;
    let max_docs: usize = args.parse_or("docs", 4)?;
    if runs == 0 || max_docs == 0 {
        return Err("--runs and --docs must be positive".into());
    }

    let tokenizer = Tokenizer::default();
    let (engine, mut interner, doc_texts, source) = match args.optional("engine") {
        // A built artifact plus a document file (one document per line).
        Some(engine_path) => {
            let doc_path = args.required("doc")?;
            let parts = load_parts_any(engine_path)?;
            let (engine, interner) = parts.into_single().map_err(|e| format!("{engine_path}: {e}"))?;
            (engine, interner, read_lines(doc_path)?, format!("{engine_path} on {doc_path}"))
        }
        // No engine: a synthetic corpus, deterministic under --seed, so the
        // same invocation profiles the same workload run after run.
        None => {
            use aeetes_datagen::{generate, DatasetProfile};
            let scale: f64 = args.parse_or("scale", 0.02)?;
            let seed: u64 = args.parse_or("seed", 42)?;
            let profile_name = args.optional("profile").unwrap_or("pubmed");
            let profile = match profile_name {
                "pubmed" => DatasetProfile::pubmed_like(),
                "dbworld" => DatasetProfile::dbworld_like(),
                "usjob" => DatasetProfile::usjob_like(),
                other => return Err(format!("unknown profile `{other}` (pubmed|dbworld|usjob)")),
            };
            if scale <= 0.0 {
                return Err("--scale must be positive".into());
            }
            let data = generate(&profile.scaled(scale), seed);
            // Synthetic documents carry interned tokens, not raw text;
            // render them back so the tokenize stage has real work to time.
            let texts: Vec<String> = data.documents.iter().map(|d| data.interner.render(d.tokens())).collect();
            let engine = Aeetes::build(data.dictionary, &data.rules, &data.interner, AeetesConfig::default());
            (engine, data.interner, texts, format!("synthetic {profile_name} (scale {scale}, seed {seed})"))
        }
    };
    let texts: Vec<&String> = doc_texts.iter().take(max_docs).collect();
    if texts.is_empty() {
        return Err("no documents to profile".into());
    }

    let limits = ExtractLimits::UNLIMITED;
    let mut scratch = ExtractScratch::new();
    let mut table: Vec<(Strategy, StageSlots, u64, ExtractStats)> = Vec::new();
    for strategy in Strategy::ALL {
        let mut agg = StageSlots::default();
        let mut totals = ExtractStats::default();
        let mut wall_nanos = 0u64;
        for run in 0..warmup + runs {
            let measured = run >= warmup;
            for text in &texts {
                let started = std::time::Instant::now();
                let doc = Document::parse(text, &tokenizer, &mut interner);
                let tokenize_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let seg = scratch.segment(0);
                let (_truncated, stats) = extract_segment_scratched(
                    engine.index(),
                    engine.derived(),
                    &doc,
                    tau,
                    strategy,
                    Metric::Jaccard,
                    false,
                    None,
                    &limits,
                    None,
                    seg,
                );
                if measured {
                    // The engine clears the scratch slots per document, so
                    // tokenize (timed out here, around the parse) and the
                    // engine-recorded slots merge into a command-local
                    // aggregate instead.
                    agg.merge(seg.stages());
                    agg.record(Stage::Tokenize, tokenize_nanos);
                    wall_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    totals += stats;
                }
            }
        }
        table.push((strategy, agg, wall_nanos, totals));
    }

    // Per-document averages over the measured runs.
    let per = (runs * texts.len()) as u64;
    println!("profile: {source}");
    println!("{} document(s) x {runs} run(s) (+{warmup} warmup), tau {tau}", texts.len());
    println!();
    print!("{:<15}", "stage");
    for (strategy, ..) in &table {
        print!("{:>12}", strategy.name());
    }
    println!();
    for stage in Stage::ALL {
        print!("{:<15}", stage.name());
        for (_, agg, ..) in &table {
            print!("{:>12}", fmt_nanos(agg.estimated_nanos(stage) / per));
        }
        println!();
    }
    print!("{:<15}", "wall");
    for (_, _, wall, _) in &table {
        print!("{:>12}", fmt_nanos(wall / per));
    }
    println!("\n");
    type StatField = fn(&ExtractStats) -> u64;
    let counters: [(&str, StatField); 4] = [
        ("accessed", |s| s.accessed_entries),
        ("candidates", |s| s.candidates),
        ("verifications", |s| s.verifications),
        ("matches", |s| s.matches),
    ];
    for (label, get) in counters {
        print!("{:<15}", label);
        for (_, _, _, totals) in &table {
            print!("{:>12}", get(totals) / runs as u64);
        }
        println!();
    }
    println!();
    println!("stage times are per-document estimates from sampled window positions;");
    println!("window_slide includes its per-position sub-stages (prefix_build,");
    println!("prefix_update, candidate_gen); wall is the measured end-to-end time.");
    Ok(EXIT_OK)
}

/// `aeetes demo`: the paper's Figure 1 scenario, no files needed.
pub fn demo() -> Result<i32, String> {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    dict.push("University of Wisconsin Madison", &tokenizer, &mut interner);
    dict.push("Purdue University USA", &tokenizer, &mut interner);
    dict.push("UQ AU", &tokenizer, &mut interner);
    let mut rules = RuleSet::new();
    for (l, r) in [
        ("UQ", "University of Queensland"),
        ("USA", "United States"),
        ("AU", "Australia"),
        ("UW", "University of Wisconsin"),
    ] {
        rules.push_str(l, r, &tokenizer, &mut interner).expect("valid demo rule");
    }
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let doc = Document::parse(
        "PC members: Alice (UW Madison), Bob (Purdue University United States), \
         Carol (Purdue University USA), Dan (University of Queensland Australia).",
        &tokenizer,
        &mut interner,
    );
    println!("document: {}\n", doc.raw);
    for m in suppress_overlaps(engine.extract(&doc, 0.9)) {
        println!("  {:5.3}  \"{}\"  →  {}", m.score, doc.text_of(m.span).unwrap_or("<span>"), engine.dictionary().record(m.entity).raw);
    }
    Ok(EXIT_OK)
}
