//! Property test for the coordinator's exactly-once ledger.
//!
//! Drives a [`PendingTable`] through arbitrary interleavings of the events
//! the coordinator generates — dispatches, replica responses (including
//! late duplicates), injected connection resets and retryable failures —
//! and checks the two invariants the cluster is built on:
//!
//! 1. every admitted request is delivered exactly once (counting the final
//!    drain sweep), no matter how the events interleave;
//! 2. no replica slot is ever handed the same request twice.

use aeetes_cluster::{FailOutcome, PendingTable};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const RIDS: usize = 5;
const REPLICAS: usize = 3;

/// One injected event: `(kind, rid index, replica)`.
type Op = (u8, usize, usize);

fn apply(table: &PendingTable<usize>, rids: &[u64], op: Op, delivered: &mut HashMap<u64, u32>, dispatched: &mut HashSet<(u64, usize)>) {
    let (kind, rid_idx, replica) = op;
    let rid = rids[rid_idx];
    match kind % 4 {
        // A routing decision: the router picks a replica not yet tried.
        // Feeding it arbitrary (possibly repeated) replicas exercises the
        // table's own at-most-once-per-replica guard.
        0 => {
            if table.dispatch(rid, replica).is_some() {
                assert!(dispatched.insert((rid, replica)), "rid {rid} dispatched to replica {replica} twice");
            }
        }
        // A replica response arrives — possibly long after the request was
        // answered through another door (the duplicate case).
        1 => {
            if table.take(rid).is_some() {
                *delivered.entry(rid).or_insert(0) += 1;
            }
        }
        // An injected reset / retryable error response: a failed attempt.
        // Exhaustion is itself a delivery (the caller answers the client).
        2 => {
            let error = if replica == 0 { None } else { Some(format!("err-{replica}")) };
            if let FailOutcome::Exhausted { .. } = table.fail(rid, error) {
                *delivered.entry(rid).or_insert(0) += 1;
            }
        }
        // A reset racing a response: failure then a late duplicate. If the
        // failure exhausts the budget, the duplicate must find nothing.
        _ => {
            if let FailOutcome::Exhausted { .. } = table.fail(rid, None) {
                *delivered.entry(rid).or_insert(0) += 1;
                assert!(table.take(rid).is_none(), "a response racing an exhaustion must lose");
            } else if table.take(rid).is_some() {
                *delivered.entry(rid).or_insert(0) += 1;
            }
        }
    }
}

proptest! {
    /// Exactly-once delivery and at-most-once-per-replica dispatch hold
    /// for every interleaving of responses, resets, and retries.
    #[test]
    fn no_interleaving_double_delivers(
        max_attempts in 1u32..5,
        ops in proptest::collection::vec((0u8..4, 0usize..RIDS, 0usize..REPLICAS), 0..120),
    ) {
        let table: PendingTable<usize> = PendingTable::new(max_attempts);
        let rids: Vec<u64> = (0..RIDS)
            .map(|i| {
                let rid = table.next_rid();
                table.admit_with_rid(i, format!("line-{rid}"), rid)
            })
            .collect();
        let mut delivered: HashMap<u64, u32> = HashMap::new();
        let mut dispatched: HashSet<(u64, usize)> = HashSet::new();

        for op in ops {
            apply(&table, &rids, op, &mut delivered, &mut dispatched);
        }

        // The shutdown sweep is the last delivery door.
        for (rid, _) in table.drain() {
            *delivered.entry(rid).or_insert(0) += 1;
        }

        for rid in &rids {
            prop_assert_eq!(
                delivered.get(rid).copied().unwrap_or(0),
                1,
                "rid {} must be delivered exactly once across responses, exhaustion, and drain",
                rid
            );
        }
        prop_assert!(table.is_empty(), "nothing may survive the drain");
    }
}
