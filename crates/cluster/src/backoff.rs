//! Capped exponential backoff with deterministic jitter.
//!
//! Retry delays grow `base * 2^attempt` up to `cap`, and each delay is
//! jittered into `[delay/2, delay]` so a burst of requests failing over
//! from one dead replica does not re-arrive at the next one in lockstep.
//! The jitter is a pure function of `(seed, attempt)` — no clock, no
//! global RNG — so tests can assert exact schedules.

use std::time::Duration;

/// Retry delay policy: capped exponential growth, half-width jitter.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Delay before the first retry (attempt 0), pre-jitter.
    pub base: Duration,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { base: Duration::from_millis(25), cap: Duration::from_secs(2) }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based) of the request
    /// identified by `seed`. Always in `[exp/2, exp]` where
    /// `exp = min(base * 2^attempt, cap)`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.base.as_nanos() as u64;
        let cap = self.cap.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix(seed.wrapping_add(u64::from(attempt))) % (half + 1)
        };
        Duration::from_nanos(exp - half + jitter)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of the seed — enough to
/// decorrelate retry schedules, deterministic by construction.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_then_caps() {
        let b = Backoff { base: Duration::from_millis(10), cap: Duration::from_millis(100) };
        // Pre-jitter schedule: 10, 20, 40, 80, 100, 100, ... — every
        // jittered delay lands in [exp/2, exp].
        let exp = [10u64, 20, 40, 80, 100, 100, 100];
        for (attempt, ms) in exp.iter().enumerate() {
            let d = b.delay(attempt as u32, 7).as_millis() as u64;
            assert!(d >= ms / 2 && d <= *ms, "attempt {attempt}: {d}ms outside [{}, {ms}]", ms / 2);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let b = Backoff::default();
        assert_eq!(b.delay(3, 42), b.delay(3, 42));
        let distinct: std::collections::HashSet<u128> = (0..32u64).map(|seed| b.delay(3, seed).as_nanos()).collect();
        assert!(distinct.len() > 16, "jitter must actually spread schedules, got {} distinct", distinct.len());
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let b = Backoff { base: Duration::from_secs(1), cap: Duration::from_secs(3) };
        assert!(b.delay(u32::MAX, 1) <= Duration::from_secs(3));
    }
}
