//! Fault-tolerant coordination over a replicated fleet of `aeetes serve`
//! processes.
//!
//! The coordinator ([`run_fleet`]) speaks the same NDJSON protocol as a
//! single `aeetes serve` — clients do not change — and in front of N
//! replicas adds:
//!
//! - **load balancing**: extract requests round-robin over the routable
//!   (up, non-draining) replicas;
//! - **failover**: retryable failures (shedding, timeout, connection
//!   reset) retry on a *different* replica with capped exponential
//!   backoff and deterministic jitter ([`Backoff`]);
//! - **exactly-once answers**: every admitted request is answered exactly
//!   once — forwarded response, retry exhaustion, deadline expiry, or the
//!   drain sweep — enforced by the [`PendingTable`] ledger, with
//!   at-most-once extraction per replica as a corollary of its `tried`
//!   list;
//! - **fleet-wide reloads**: a client `reload` ships the dictionary delta
//!   two-phase (prepare everywhere, then activate), so the fleet never
//!   serves a mixed set of generations; replicas that die mid-swap are
//!   resynced from the coordinator's delta log when they rejoin;
//! - **supervision**: spawned replicas are respawned when they die,
//!   remote replicas are re-dialed, and hung replicas are detected by
//!   health-probe timeouts and cut loose;
//! - **durable deltas** ([`FleetOptions::wal`]): activated deltas are
//!   appended to a write-ahead log and fsynced before the client's ack, a
//!   restarted coordinator restores its generation math and resync log
//!   from disk, and a [`Compactor`] folds a grown log into a fresh engine
//!   artifact so both the log and the in-memory delta list stay bounded.
//!
//! The crate intentionally does not depend on `aeetes-cli`: it speaks the
//! wire protocol directly (the CLI depends on this crate for the `fleet`
//! subcommand, so the dependency can only point this way). The one piece
//! of protocol knowledge duplicated here is [`retryable_code`]; a test on
//! the CLI side pins it against `protocol::ErrorCode::retryable` so the
//! two can never drift silently.

mod backoff;
mod coordinator;
mod pending;
mod replica;

pub use backoff::Backoff;
pub use coordinator::{run_fleet, Compactor, FleetOptions, FleetSummary};
pub use pending::{FailOutcome, PendingTable};
pub use replica::{Replica, ReplicaSpec};

/// Whether an error code on the wire marks a failed attempt as safe to
/// retry on another replica. Mirrors `ErrorCode::retryable` in the CLI's
/// protocol module (pinned by a cross-crate test there): `timeout` and
/// `shedding` are transient per-replica conditions; everything else would
/// fail identically anywhere.
pub fn retryable_code(code: &str) -> bool {
    matches!(code, "timeout" | "shedding")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_codes_are_exactly_timeout_and_shedding() {
        assert!(retryable_code("timeout"));
        assert!(retryable_code("shedding"));
        for code in ["bad_request", "too_large", "internal", "conflict", "", "reset"] {
            assert!(!retryable_code(code), "{code} must not be retried");
        }
    }
}
