//! One replica slot of the fleet: a spawned `aeetes serve` child or a
//! remote TCP endpoint, plus its live connection state.
//!
//! The slot outlives any single process or connection behind it. Each
//! successful (re)connect bumps the slot's *epoch*; the reader thread that
//! serviced the old connection carries the old epoch and therefore cannot
//! mark the slot down after a newer connection has already been attached.
//!
//! Connection management (spawn, banner parse, handshake, resync, attach)
//! is the supervisor's job and runs synchronously on the not-yet-attached
//! stream; the routing path only ever calls [`Replica::send_line`] and the
//! atomic state getters, so a dead replica never blocks a dispatch for
//! longer than one failed write.

use serde_json::Value;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a replica slot obtains a process to talk to.
#[derive(Debug, Clone)]
pub enum ReplicaSpec {
    /// Spawn `program serve <args>` as a child; the child must print the
    /// `listening on ADDR` banner on stdout (`--listen 127.0.0.1:0` makes
    /// the OS pick the port). The supervisor respawns it when it dies.
    Spawn { program: PathBuf, args: Vec<String> },
    /// An externally managed `aeetes serve` at this address. The
    /// supervisor reconnects but never spawns.
    Remote { addr: String },
}

/// Live connection state, guarded by one mutex so attach/down transitions
/// are atomic with respect to each other.
struct ConnState {
    /// Bumped on every attach; readers from older epochs are stale.
    epoch: u64,
    /// Write half of the data connection when attached.
    writer: Option<TcpStream>,
    /// Address of the current (or last) connection, for stats.
    addr: Option<String>,
}

pub struct Replica {
    pub id: usize,
    pub spec: ReplicaSpec,
    state: Mutex<ConnState>,
    child: Mutex<Option<Child>>,
    /// Routable: attached and not known dead. Read on the dispatch path.
    up: AtomicBool,
    /// The replica reported `draining: true` (stop routing, don't requeue:
    /// a draining replica still answers what it already accepted).
    pub draining: AtomicBool,
    /// Generation the replica last reported.
    pub generation: AtomicU64,
    /// Child pid (0 when remote or not running), for the fleet banner.
    pub pid: AtomicU64,
    /// rids currently dispatched to this replica and not yet answered.
    inflight: Mutex<HashSet<u64>>,
}

/// Result of a successful handshake on a fresh connection. `stream` is
/// the writable socket; `reader` wraps a clone of it (both share the
/// descriptor, so a shutdown or timeout applies to both halves).
pub struct Handshake {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
    pub generation: u64,
    pub draining: bool,
    pub addr: String,
}

impl Replica {
    pub fn new(id: usize, spec: ReplicaSpec) -> Self {
        Replica {
            id,
            spec,
            state: Mutex::new(ConnState { epoch: 0, writer: None, addr: None }),
            child: Mutex::new(None),
            up: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            pid: AtomicU64::new(0),
            inflight: Mutex::new(HashSet::new()),
        }
    }

    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    pub fn addr(&self) -> Option<String> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).addr.clone()
    }

    /// Writes one request line on the data connection. `false` when not
    /// attached or the write failed (the caller treats it as a failed
    /// attempt; the reader thread will notice the broken socket too).
    pub fn send_line(&self, line: &str) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let Some(writer) = state.writer.as_mut() else { return false };
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    }

    pub fn track_inflight(&self, rid: u64) {
        self.inflight.lock().unwrap_or_else(|p| p.into_inner()).insert(rid);
    }

    /// Returns whether the rid was still tracked here (false for a late
    /// response whose rid was already requeued after a disconnect).
    pub fn untrack_inflight(&self, rid: u64) -> bool {
        self.inflight.lock().unwrap_or_else(|p| p.into_inner()).remove(&rid)
    }

    pub fn take_inflight(&self) -> Vec<u64> {
        self.inflight.lock().unwrap_or_else(|p| p.into_inner()).drain().collect()
    }

    /// Marks the slot down *if* `epoch` is still the attached connection's
    /// epoch, shutting the socket so every clone of it errors out. Returns
    /// whether this call performed the transition (exactly one caller —
    /// reader thread, probe timeout, or failed write — wins).
    pub fn mark_down(&self, epoch: u64) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.epoch != epoch || !self.up.swap(false, Ordering::Relaxed) {
            return false;
        }
        if let Some(w) = state.writer.take() {
            let _ = w.shutdown(Shutdown::Both);
        }
        true
    }

    /// Current epoch (captured by reader threads and probe failures so
    /// their `mark_down` cannot clobber a newer connection).
    pub fn epoch(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).epoch
    }

    /// Attaches a handshaken connection: stores the write half, bumps the
    /// epoch, marks the slot routable. Returns the new epoch for the
    /// reader thread.
    pub fn attach(&self, write_half: TcpStream, addr: String, generation: u64, draining: bool) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.epoch += 1;
        state.writer = Some(write_half);
        state.addr = Some(addr);
        self.generation.store(generation, Ordering::Relaxed);
        self.draining.store(draining, Ordering::Relaxed);
        self.up.store(true, Ordering::Relaxed);
        state.epoch
    }

    /// Spawns (or reuses) the child / dials the remote, and handshakes
    /// with a `health` probe so the caller learns the replica's generation
    /// before any traffic is routed. Purely synchronous; nothing is
    /// attached yet.
    pub fn connect(&self, handshake_timeout: Duration) -> Result<Handshake, String> {
        let addr = match &self.spec {
            ReplicaSpec::Remote { addr } => addr.clone(),
            ReplicaSpec::Spawn { program, args } => self.spawn_child(program, args, handshake_timeout)?,
        };
        let mut stream = TcpStream::connect(&addr).map_err(|e| format!("replica {}: connect {addr}: {e}", self.id))?;
        stream.set_read_timeout(Some(handshake_timeout)).map_err(|e| format!("replica {}: {e}", self.id))?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("replica {}: {e}", self.id))?);
        let hello =
            sync_request(&mut stream, &mut reader, r#"{"type":"health","id":0}"#).map_err(|e| format!("replica {}: handshake: {e}", self.id))?;
        let generation = hello
            .get("generation")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("replica {}: handshake response carries no generation: {hello}", self.id))?;
        let draining = hello.get("draining").and_then(Value::as_bool).unwrap_or(false);
        // The caller (supervisor) may run resync requests on this stream
        // before attaching the reader thread.
        Ok(Handshake { stream, reader, generation, draining, addr })
    }

    /// Spawns the child if none is running and returns the address from
    /// its banner. A child that already exited is reaped first.
    fn spawn_child(&self, program: &PathBuf, args: &[String], banner_timeout: Duration) -> Result<String, String> {
        let mut slot = self.child.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(child) = slot.as_mut() {
            match child.try_wait() {
                Ok(None) => {
                    // Still running (connection trouble, not process death):
                    // reuse the address we spawned it on.
                    if let Some(addr) = self.addr() {
                        return Ok(addr);
                    }
                    let _ = child.kill();
                    let _ = child.wait();
                }
                _ => {
                    let _ = child.wait();
                }
            }
            *slot = None;
        }
        let mut child = Command::new(program)
            .arg("serve")
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("replica {}: spawn {}: {e}", self.id, program.display()))?;
        let stdout = child.stdout.take().ok_or_else(|| format!("replica {}: no child stdout", self.id))?;
        self.pid.store(u64::from(child.id()), Ordering::Relaxed);
        *slot = Some(child);
        drop(slot);
        // The banner read has no native timeout; poll the child instead so
        // a child that dies before binding fails fast, and give a healthy
        // child the full budget.
        let deadline = Instant::now() + banner_timeout.max(Duration::from_secs(5));
        let mut banner_reader = BufReader::new(stdout);
        let mut banner = String::new();
        loop {
            banner.clear();
            match banner_reader.read_line(&mut banner) {
                Ok(0) => return Err(format!("replica {}: child exited before printing its banner", self.id)),
                Ok(_) => {
                    if let Some(addr) = banner.trim().strip_prefix("listening on ") {
                        // Keep draining the child's stdout so later banner
                        // lines (metrics) never fill the pipe and block it.
                        std::thread::spawn(move || {
                            let mut sink = String::new();
                            while let Ok(n) = banner_reader.read_line(&mut sink) {
                                if n == 0 {
                                    break;
                                }
                                sink.clear();
                            }
                        });
                        return Ok(addr.to_string());
                    }
                }
                Err(e) => return Err(format!("replica {}: reading banner: {e}", self.id)),
            }
            if Instant::now() >= deadline {
                return Err(format!("replica {}: no banner within {banner_timeout:?}", self.id));
            }
        }
    }

    /// SIGKILLs and reaps the child (spawned slots; no-op for remote).
    pub fn kill_child(&self) {
        let mut slot = self.child.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(mut child) = slot.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Sends a shutdown request on the data connection (best effort) so a
    /// spawned replica drains instead of being killed.
    pub fn request_shutdown(&self) {
        self.send_line(r#"{"type":"shutdown","id":0}"#);
    }

    /// Waits up to `timeout` for the child to exit, then kills it.
    pub fn wait_child(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let mut slot = self.child.lock().unwrap_or_else(|p| p.into_inner());
            let Some(child) = slot.as_mut() else { return };
            match child.try_wait() {
                Ok(Some(_)) => {
                    *slot = None;
                    return;
                }
                Ok(None) if Instant::now() < deadline => {}
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    *slot = None;
                    return;
                }
            }
            drop(slot);
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// One synchronous request/response on a not-yet-attached connection
/// (handshake and resync replay). The stream's read timeout bounds the
/// wait; blank or non-JSON lines are skipped.
pub fn sync_request(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Result<Value, String> {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write: {e}"))?;
    loop {
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => return Err("connection closed mid-handshake".into()),
            Ok(_) => {
                if response.trim().is_empty() {
                    continue;
                }
                return serde_json::from_str(&response).map_err(|e| format!("bad response line: {e}"));
            }
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}
