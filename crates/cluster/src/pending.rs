//! The coordinator's exactly-once ledger.
//!
//! Every admitted client request gets a coordinator-assigned request id
//! (*rid*) and one [`PendingTable`] entry. The entry leaves the table by
//! exactly one of three doors — [`PendingTable::take`] (a response is
//! forwarded), [`FailOutcome::Exhausted`] (retries used up), or
//! [`PendingTable::drain`] (final shutdown sweep) — and each door removes
//! it, so a request can never be answered twice no matter how responses,
//! resets, and timeouts interleave. A late duplicate response simply finds
//! no entry.
//!
//! At-most-once extraction per replica: [`PendingTable::dispatch`] records
//! the replica slot in the entry's `tried` list and refuses a slot that is
//! already there, so a rid is never resent to a replica that may already
//! be extracting it — a retry always fails over to a different slot.
//!
//! The table is deliberately clock-free (expiry is the dispatcher's job),
//! which is what makes the proptest in `tests/pending_proptest.rs` able to
//! drive arbitrary interleavings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Entry<T> {
    deliver: T,
    /// The request line with the wire id rewritten to the rid; resent
    /// verbatim on every attempt.
    line: String,
    /// Replica slots this rid has been dispatched to, in order.
    tried: Vec<usize>,
    /// Failed attempts recorded so far.
    failures: u32,
    /// The last error response observed, kept so an exhausted request is
    /// answered with the real reason instead of a generic failure.
    last_error: Option<String>,
}

/// Outcome of recording a failed attempt.
#[derive(Debug)]
pub enum FailOutcome<T> {
    /// Another attempt is allowed; the entry stays. `failures` is the
    /// total recorded so far (use it to scale the backoff).
    Retry { failures: u32 },
    /// The attempt budget is spent: the entry is removed and must be
    /// answered now, exactly once, by the caller.
    Exhausted { deliver: T, last_error: Option<String> },
    /// The rid was already answered (or never admitted): do nothing.
    AlreadyAnswered,
}

/// See the module docs. `T` is the delivery payload (client id + sink in
/// the coordinator; a plain marker in tests).
pub struct PendingTable<T> {
    max_attempts: u32,
    next_rid: AtomicU64,
    inner: Mutex<HashMap<u64, Entry<T>>>,
}

impl<T> PendingTable<T> {
    /// `max_attempts` is the total number of dispatches a request may
    /// consume before it is answered as exhausted (min 1).
    pub fn new(max_attempts: u32) -> Self {
        PendingTable {
            max_attempts: max_attempts.max(1),
            next_rid: AtomicU64::new(1),
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry<T>>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits a request, returning its rid. `line` must already carry the
    /// rid as its wire id.
    pub fn admit_with_rid(&self, deliver: T, line: String, rid: u64) -> u64 {
        let entry = Entry { deliver, line, tried: Vec::new(), failures: 0, last_error: None };
        self.lock().insert(rid, entry);
        rid
    }

    /// Reserves the next rid. Split from admission so the caller can embed
    /// the rid into the wire line before inserting the entry.
    pub fn next_rid(&self) -> u64 {
        self.next_rid.fetch_add(1, Ordering::Relaxed)
    }

    /// Requests currently awaiting an answer.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks an attempt on `replica` and returns the line to send. `None`
    /// when the rid is gone (already answered — skip the dispatch) or when
    /// `replica` was already tried (the at-most-once-per-replica guard; a
    /// correct router never hits it, an incorrect one is stopped here).
    pub fn dispatch(&self, rid: u64, replica: usize) -> Option<String> {
        let mut map = self.lock();
        let entry = map.get_mut(&rid)?;
        if entry.tried.contains(&replica) {
            return None;
        }
        entry.tried.push(replica);
        Some(entry.line.clone())
    }

    /// The replica slots this rid has been dispatched to (empty when the
    /// rid is gone). The router picks a slot not in this list.
    pub fn tried(&self, rid: u64) -> Vec<usize> {
        self.lock().get(&rid).map(|e| e.tried.clone()).unwrap_or_default()
    }

    /// Takes the entry for answering. The first caller wins; every later
    /// response for the same rid gets `None` (count it as a duplicate).
    pub fn take(&self, rid: u64) -> Option<T> {
        self.lock().remove(&rid).map(|e| e.deliver)
    }

    /// Reads the payload without removing it (routing decisions: expiry,
    /// internal-vs-client). `None` when already answered. A decision based
    /// on the result may race a concurrent `take` — callers must treat a
    /// later `take` returning `None` as "someone else answered", which the
    /// exactly-once contract already requires.
    pub fn peek<R>(&self, rid: u64, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.lock().get(&rid).map(|e| f(&e.deliver))
    }

    /// Records a failed attempt (retryable error response, connection
    /// reset, probe-timeout requeue). `error_line` is the replica's error
    /// response when there was one.
    pub fn fail(&self, rid: u64, error_line: Option<String>) -> FailOutcome<T> {
        let mut map = self.lock();
        let Some(entry) = map.get_mut(&rid) else {
            return FailOutcome::AlreadyAnswered;
        };
        entry.failures += 1;
        if error_line.is_some() {
            entry.last_error = error_line;
        }
        if entry.failures >= self.max_attempts {
            let entry = map.remove(&rid).expect("entry present under the same lock");
            return FailOutcome::Exhausted { deliver: entry.deliver, last_error: entry.last_error };
        }
        FailOutcome::Retry { failures: entry.failures }
    }

    /// Removes and returns every remaining entry (the shutdown sweep: the
    /// caller answers each as shed so counters reconcile).
    pub fn drain(&self) -> Vec<(u64, T)> {
        self.lock().drain().map(|(rid, e)| (rid, e.deliver)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(table: &PendingTable<&'static str>, payload: &'static str) -> u64 {
        let rid = table.next_rid();
        table.admit_with_rid(payload, format!("line-{rid}"), rid)
    }

    #[test]
    fn take_is_exactly_once() {
        let t = PendingTable::new(3);
        let rid = admit(&t, "a");
        assert_eq!(t.take(rid), Some("a"));
        assert_eq!(t.take(rid), None, "second take must observe the first");
        assert!(t.is_empty());
    }

    #[test]
    fn dispatch_refuses_a_replica_already_tried() {
        let t = PendingTable::new(3);
        let rid = admit(&t, "a");
        assert_eq!(t.dispatch(rid, 0).as_deref(), Some("line-1"));
        assert_eq!(t.dispatch(rid, 0), None, "same slot twice would risk double extraction");
        assert_eq!(t.dispatch(rid, 1).as_deref(), Some("line-1"));
        assert_eq!(t.tried(rid), vec![0, 1]);
    }

    #[test]
    fn fail_exhausts_after_max_attempts_and_keeps_last_error() {
        let t = PendingTable::new(2);
        let rid = admit(&t, "a");
        match t.fail(rid, Some("err-1".into())) {
            FailOutcome::Retry { failures: 1 } => {}
            other => panic!("expected first Retry, got {other:?}"),
        }
        match t.fail(rid, None) {
            FailOutcome::Exhausted { deliver: "a", last_error: Some(e) } => assert_eq!(e, "err-1"),
            other => panic!("expected Exhausted keeping the error, got {other:?}"),
        }
        assert!(matches!(t.fail(rid, None), FailOutcome::AlreadyAnswered));
        assert_eq!(t.take(rid), None, "exhaustion already delivered the entry");
    }

    #[test]
    fn drain_removes_everything_once() {
        let t = PendingTable::new(3);
        let a = admit(&t, "a");
        let _b = admit(&t, "b");
        assert_eq!(t.take(a), Some("a"));
        let drained = t.drain();
        assert_eq!(drained.len(), 1, "only the unanswered entry remains");
        assert_eq!(drained[0].1, "b");
        assert!(t.is_empty());
    }

    #[test]
    fn rids_are_unique_and_monotonic() {
        let t: PendingTable<()> = PendingTable::new(1);
        let a = t.next_rid();
        let b = t.next_rid();
        assert!(b > a);
    }
}
