//! The fleet coordinator: accepts the NDJSON protocol, load-balances
//! extract requests over the replicas, retries retryable failures on a
//! different replica with capped backoff, and ships dictionary deltas
//! fleet-wide in two phases.
//!
//! # Exactly-once
//!
//! Every admitted extract request lives in the [`PendingTable`] until it
//! is answered through exactly one door: a forwarded replica response,
//! retry exhaustion, the per-request deadline, or the final drain sweep.
//! Late or duplicate replica responses find no entry and are counted, not
//! forwarded. A retry never returns to a replica slot that already saw the
//! rid, so no replica extracts the same admitted request twice.
//!
//! # Threads
//!
//! * main: client accept loop (mirrors `aeetes serve`);
//! * one reader per client connection: parses lines, answers control
//!   requests, admits extract work;
//! * one dispatcher: routes rids to replicas, schedules delayed retries,
//!   enforces per-request deadlines;
//! * one reader per replica connection: matches responses to rids;
//! * supervisor: revives dead replicas (respawn / reconnect + resync);
//! * health: periodic probes; a probe timeout is how a *hung* (not dead)
//!   replica is detected and cut loose.
//!
//! # Two-phase reload
//!
//! A client `reload` becomes: `prepare` on every up replica (each builds
//! generation `G+1` off to the side and parks it), then — only when every
//! prepare acked — `activate G+1` everywhere. Replicas that fail the
//! activate are disconnected and resynced by the supervisor from the
//! coordinator's delta log, so the fleet always converges back to a single
//! generation; a fleet never *serves* a mixed set because no replica swaps
//! before all of them have finished building.

use crate::backoff::Backoff;
use crate::pending::{FailOutcome, PendingTable};
use crate::replica::{sync_request, Handshake, Replica, ReplicaSpec};
use crate::retryable_code;
use aeetes_core::{Wal, WalError};
use aeetes_obs::{FleetMetrics, MetricRegistry, ReplicaMetrics, WalMetrics};
use serde_json::{json, Map, Value};
use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Folds logged deltas into a fresh engine artifact. Called by the
/// coordinator when the delta log passes the compaction threshold, with
/// `(deltas, base, target)`: the full log, the generation the log starts
/// at, and the generation the rewritten artifact must load as. The
/// implementation lives with the embedder (the CLI) because the cluster
/// crate speaks only the wire protocol and cannot rebuild engines itself.
/// It must write the artifact durably (fsync + atomic rename); only after
/// it returns `Ok` does the coordinator reset its log.
pub type Compactor = Arc<dyn Fn(&[Value], u64, u64) -> Result<(), String> + Send + Sync>;

/// Tuning knobs of one fleet run.
#[derive(Clone)]
pub struct FleetOptions {
    /// Client-facing listener address (`:0` lets the OS pick).
    pub listen: String,
    /// The replica slots (spawned children and/or remote endpoints).
    pub replicas: Vec<ReplicaSpec>,
    /// Total dispatch attempts per request; `0` means one per replica.
    pub max_attempts: u32,
    /// Admission-to-answer deadline: a request that cannot be served
    /// within it (all replicas down, endless shedding) is answered
    /// `timeout` instead of waiting forever.
    pub request_timeout: Duration,
    /// Retry delay policy.
    pub backoff: Backoff,
    /// Health probe period.
    pub health_interval: Duration,
    /// Probe / handshake response budget; a replica silent for this long
    /// is treated as hung and disconnected.
    pub probe_timeout: Duration,
    /// Budget for each phase of a fleet reload (index rebuilds are slow).
    pub reload_timeout: Duration,
    /// How long the final drain may wait for in-flight work.
    pub drain: Duration,
    /// `Some(path)`: durable delta log. Every fleet-wide activated delta
    /// is appended and fsynced before the client's ack, and a restarted
    /// coordinator restores its generation math and resync log from disk
    /// instead of refusing rejoining replicas it no longer remembers.
    pub wal: Option<PathBuf>,
    /// Compact the log into a fresh artifact (via `compactor`) once it
    /// holds this many deltas, bounding both the log file and the
    /// in-memory delta log. `0` disables compaction.
    pub compact_threshold: usize,
    /// Artifact rewriter used by compaction; `None` disables compaction
    /// even when the threshold is set.
    pub compactor: Option<Compactor>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            listen: "127.0.0.1:0".into(),
            replicas: Vec::new(),
            max_attempts: 0,
            request_timeout: Duration::from_secs(10),
            backoff: Backoff::default(),
            health_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(2),
            reload_timeout: Duration::from_secs(30),
            drain: Duration::from_secs(5),
            wal: None,
            compact_threshold: 64,
            compactor: None,
        }
    }
}

/// Final outcome counters, for the caller's exit report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSummary {
    pub served: u64,
    pub shed: u64,
    pub failed: u64,
}

/// A client connection's write half, shared with every thread that may
/// answer one of its requests.
type Sink = Arc<Mutex<TcpStream>>;

/// Where a pending request's answer goes.
enum Deliver {
    /// A client extract request: restore `id`, write to `sink`.
    Client { id: Value, sink: Sink, expires: Instant },
    /// A coordinator-internal request (probe, prepare, activate): the full
    /// response value is handed to the waiting thread.
    Internal(Sender<Value>),
}

struct DispatchMsg {
    rid: u64,
    not_before: Instant,
}

struct Fleet {
    replicas: Vec<Arc<Replica>>,
    rmetrics: Vec<ReplicaMetrics>,
    pending: PendingTable<Deliver>,
    metrics: FleetMetrics,
    registry: Arc<MetricRegistry>,
    dispatch_tx: Sender<DispatchMsg>,
    draining: AtomicBool,
    /// Generation the replicas' on-disk artifact starts at (0 = not yet
    /// learned from the first handshake).
    base_generation: AtomicU64,
    /// Generation the fleet has converged on.
    generation: AtomicU64,
    /// Every delta applied fleet-wide, in order: delta `i` takes
    /// generation `base + i` to `base + i + 1`. Rejoining replicas replay
    /// the suffix they missed.
    delta_log: Mutex<Vec<Value>>,
    /// Serializes fleet reloads and supervisor resyncs: a replica is never
    /// resynced mid-two-phase, and generation math sees a stable log.
    reload_lock: Mutex<()>,
    /// The durable delta log (`--wal`). `None` inside the mutex until the
    /// base generation is known: restored from disk at startup, or created
    /// at the first replica handshake.
    wal: Mutex<Option<Wal>>,
    /// Latched on the first failed append/sync/reset: further reloads are
    /// refused (their durability could not be promised) while extraction
    /// routing continues unaffected.
    wal_failed: AtomicBool,
    wmetrics: WalMetrics,
    opts: FleetOptions,
    start: Instant,
    round_robin: AtomicUsize,
}

impl Fleet {
    fn up_count(&self) -> i64 {
        self.replicas.iter().filter(|r| r.is_up()).count() as i64
    }

    /// Creates the delta WAL at `base` if `--wal` was given and no log is
    /// open yet (the base generation is only known once the first replica
    /// handshakes, unless a log was restored from disk at startup).
    fn ensure_wal(&self, base: u64) -> Result<(), String> {
        let Some(path) = &self.opts.wal else { return Ok(()) };
        let mut slot = self.wal.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_some() {
            return Ok(());
        }
        let (wal, _replay) = Wal::open_or_create(path, base).map_err(|e| format!("{}: {e}", path.display()))?;
        self.wmetrics.records.set(wal.record_count().min(i64::MAX as u64) as i64);
        self.wmetrics.bytes.set(wal.len_bytes().min(i64::MAX as u64) as i64);
        *slot = Some(wal);
        Ok(())
    }

    /// Appends + fsyncs one fleet-wide activated delta; only after this
    /// returns `Ok` may the client be acked. A failure latches
    /// `wal_failed`: the fleet *has* activated the delta (in-memory state
    /// and the replicas are consistent) but a coordinator restart may not
    /// remember it, so the client is told and further reloads are refused.
    fn wal_commit(&self, generation: u64, delta: &Value) -> Result<(), String> {
        let mut slot = self.wal.lock().unwrap_or_else(|p| p.into_inner());
        let Some(wal) = slot.as_mut() else { return Ok(()) };
        let payload = delta.to_string();
        let result = (|| {
            wal.append(generation, payload.as_bytes())?;
            let sync_started = Instant::now();
            wal.sync()?;
            self.wmetrics
                .fsync_nanos
                .observe_nanos(u64::try_from(sync_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            Ok::<(), WalError>(())
        })();
        match result {
            Ok(()) => {
                self.wmetrics.appends.inc(1);
                self.wmetrics.append_bytes.inc(payload.len() as u64);
                self.wmetrics.records.set(wal.record_count().min(i64::MAX as u64) as i64);
                self.wmetrics.bytes.set(wal.len_bytes().min(i64::MAX as u64) as i64);
                Ok(())
            }
            Err(e) => {
                self.wmetrics.append_failures.inc(1);
                self.wal_failed.store(true, Ordering::Relaxed);
                Err(format!("delta log append for generation {generation} failed: {e}"))
            }
        }
    }

    /// Runs under the reload lock after a successful fleet reload: once the
    /// log passes the threshold, fold it into a fresh artifact via the
    /// embedder's compactor, then reset log + base. Compaction failure is
    /// reported but non-fatal — the log simply keeps growing until a later
    /// attempt succeeds; a *reset* failure after the artifact was already
    /// rewritten latches `wal_failed` (recovery remains correct: replay of
    /// already-folded records is skipped by generation number).
    fn maybe_compact(&self) {
        let threshold = self.opts.compact_threshold;
        let Some(compactor) = &self.opts.compactor else { return };
        if threshold == 0 {
            return;
        }
        let log_len = self.delta_log.lock().unwrap_or_else(|p| p.into_inner()).len();
        if log_len < threshold {
            return;
        }
        let deltas = self.delta_log.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let base = self.base_generation.load(Ordering::Relaxed);
        let target = self.generation.load(Ordering::Relaxed);
        if let Err(e) = compactor(&deltas, base, target) {
            eprintln!("fleet: compaction to generation {target} failed (log kept): {e}");
            return;
        }
        let mut slot = self.wal.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(wal) = slot.as_mut() {
            if let Err(e) = wal.reset(target) {
                eprintln!("fleet: delta log reset after compaction failed: {e}");
                self.wal_failed.store(true, Ordering::Relaxed);
                return;
            }
            self.wmetrics.records.set(0);
            self.wmetrics.bytes.set(0);
        }
        drop(slot);
        self.delta_log.lock().unwrap_or_else(|p| p.into_inner()).clear();
        self.base_generation.store(target, Ordering::Relaxed);
        self.wmetrics.compactions.inc(1);
        eprintln!("fleet: compacted {log_len} delta(s) into the artifact at generation {target}");
    }
}

/// Writes one line to a client, swallowing errors (a hung-up client must
/// never take the coordinator down).
fn respond(sink: &Sink, line: &str) {
    let mut w = sink.lock().unwrap_or_else(|p| p.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// Sets (or replaces) one field of a JSON object; no-op on non-objects.
fn set_field(v: &mut Value, key: &str, val: Value) {
    if let Value::Object(map) = v {
        map.insert(key.to_string(), val);
    }
}

/// Outcome class of an answer, for the reconciling counters.
#[derive(Clone, Copy)]
enum Class {
    Served,
    Shed,
    Failed,
}

fn class_of(v: &Value) -> Class {
    if v.get("status").and_then(Value::as_str) == Some("ok") {
        Class::Served
    } else if v.get("code").and_then(Value::as_str) == Some("shedding") {
        Class::Shed
    } else {
        Class::Failed
    }
}

/// The single funnel for answering a client extract request: every path
/// (forward, exhaustion, expiry, drain) ends here, which is what keeps
/// `served + shed + failed` equal to the number of extract requests.
fn answer_client(fleet: &Fleet, sink: &Sink, mut response: Value, client_id: Value) {
    set_field(&mut response, "id", client_id);
    match class_of(&response) {
        Class::Served => fleet.metrics.answered_served.inc(1),
        Class::Shed => fleet.metrics.answered_shed.inc(1),
        Class::Failed => fleet.metrics.answered_failed.inc(1),
    }
    respond(sink, &response.to_string());
}

fn error_value(code: &str, message: &str) -> Value {
    json!({"status": "error", "code": code, "message": message, "retryable": matches!(code, "timeout" | "shedding")})
}

/// Handles a failed attempt for `rid` (retryable error response, reset,
/// failed write, probe-loss requeue): internal requests complete with an
/// error immediately, client requests retry with backoff until exhausted.
fn handle_failure(fleet: &Arc<Fleet>, rid: u64, error_line: Option<String>) {
    let internal = fleet.pending.peek(rid, |d| matches!(d, Deliver::Internal(_)));
    match internal {
        None => {}
        Some(true) => {
            if let Some(Deliver::Internal(tx)) = fleet.pending.take(rid) {
                let _ = tx.send(error_value("reset", "replica connection lost"));
            }
        }
        Some(false) => match fleet.pending.fail(rid, error_line) {
            FailOutcome::Retry { failures } => {
                fleet.metrics.retried.inc(1);
                let delay = fleet.opts.backoff.delay(failures.saturating_sub(1), rid);
                let _ = fleet.dispatch_tx.send(DispatchMsg { rid, not_before: Instant::now() + delay });
            }
            FailOutcome::Exhausted { deliver, last_error } => {
                if let Deliver::Client { id, sink, .. } = deliver {
                    let response = last_error
                        .and_then(|l| serde_json::from_str(&l).ok())
                        .unwrap_or_else(|| error_value("internal", "request failed on every replica"));
                    answer_client(fleet, &sink, response, id);
                }
            }
            FailOutcome::AlreadyAnswered => {}
        },
    }
}

/// A replica left the routable set: requeue everything it still owed.
fn on_replica_down(fleet: &Arc<Fleet>, replica: &Arc<Replica>) {
    fleet.rmetrics[replica.id].up.set(0);
    fleet.metrics.replicas_up.set(fleet.up_count());
    eprintln!("fleet: replica {} down", replica.id);
    for rid in replica.take_inflight() {
        fleet.rmetrics[replica.id].failures.inc(1);
        handle_failure(fleet, rid, None);
    }
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

/// Delayed-retry heap entry, ordered soonest-first.
struct Due(Instant, u64);
impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}

fn dispatcher_loop(fleet: &Arc<Fleet>, rx: &Receiver<DispatchMsg>) {
    let mut delayed: BinaryHeap<Due> = BinaryHeap::new();
    loop {
        let wait = delayed
            .peek()
            .map(|Due(at, _)| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        match rx.recv_timeout(wait) {
            Ok(msg) => {
                if msg.not_before <= Instant::now() {
                    route(fleet, msg.rid);
                } else {
                    delayed.push(Due(msg.not_before, msg.rid));
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        while delayed.peek().is_some_and(|Due(at, _)| *at <= Instant::now()) {
            let Due(_, rid) = delayed.pop().expect("peeked entry");
            route(fleet, rid);
        }
        if fleet.draining.load(Ordering::Relaxed) && fleet.pending.is_empty() {
            return;
        }
    }
}

/// Routes one rid: deadline check, replica pick, send. No eligible replica
/// requeues with a short delay (bounded by the deadline); a failed send is
/// a failed attempt.
fn route(fleet: &Arc<Fleet>, rid: u64) {
    let Some(expires) = fleet.pending.peek(rid, |d| match d {
        Deliver::Client { expires, .. } => Some(*expires),
        Deliver::Internal(_) => None,
    }) else {
        return; // already answered
    };
    let expires = expires.expect("only client requests are routed");
    if Instant::now() >= expires {
        if let Some(Deliver::Client { id, sink, .. }) = fleet.pending.take(rid) {
            answer_client(fleet, &sink, error_value("timeout", "request deadline expired before any replica could serve it"), id);
        }
        return;
    }
    let tried = fleet.pending.tried(rid);
    let n = fleet.replicas.len();
    let offset = fleet.round_robin.fetch_add(1, Ordering::Relaxed);
    let chosen = (0..n)
        .map(|i| &fleet.replicas[(offset + i) % n])
        .find(|r| r.is_up() && !r.draining.load(Ordering::Relaxed) && !tried.contains(&r.id));
    let Some(replica) = chosen else {
        if fleet.draining.load(Ordering::Relaxed) {
            if let Some(Deliver::Client { id, sink, .. }) = fleet.pending.take(rid) {
                answer_client(fleet, &sink, error_value("shedding", "fleet is draining"), id);
            }
            return;
        }
        // Nothing routable right now (replicas down or all tried): check
        // again shortly; the deadline above bounds the loop.
        let _ = fleet.dispatch_tx.send(DispatchMsg { rid, not_before: Instant::now() + Duration::from_millis(25) });
        return;
    };
    let Some(line) = fleet.pending.dispatch(rid, replica.id) else { return };
    if !tried.is_empty() {
        fleet.metrics.failed_over.inc(1);
    }
    fleet.metrics.routed.inc(1);
    fleet.rmetrics[replica.id].routed.inc(1);
    replica.track_inflight(rid);
    if !replica.send_line(&line) {
        replica.untrack_inflight(rid);
        fleet.rmetrics[replica.id].failures.inc(1);
        let epoch = replica.epoch();
        if replica.mark_down(epoch) {
            on_replica_down(fleet, replica);
        }
        handle_failure(fleet, rid, None);
    }
}

// ---------------------------------------------------------------------------
// Replica reader
// ---------------------------------------------------------------------------

/// Resumable capped line reader (same contract as the serve-side one): a
/// read timeout mid-line keeps the partial prefix, and a line over the cap
/// is discarded without desyncing the stream.
struct LineReader {
    cap: usize,
    buf: Vec<u8>,
    discarding: bool,
}

enum LineRead {
    Line(Vec<u8>),
    Oversized,
    Eof,
}

impl LineReader {
    fn new(cap: usize) -> Self {
        LineReader { cap, buf: Vec::new(), discarding: false }
    }

    fn next_line(&mut self, reader: &mut impl BufRead) -> std::io::Result<LineRead> {
        loop {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                if self.discarding {
                    self.discarding = false;
                    return Ok(LineRead::Oversized);
                }
                return Ok(if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(std::mem::take(&mut self.buf))
                });
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            if self.discarding {
                match newline {
                    Some(pos) => {
                        reader.consume(pos + 1);
                        self.discarding = false;
                        return Ok(LineRead::Oversized);
                    }
                    None => {
                        let n = buf.len();
                        reader.consume(n);
                    }
                }
                continue;
            }
            match newline {
                Some(pos) => {
                    if self.buf.len() + pos <= self.cap {
                        self.buf.extend_from_slice(&buf[..pos]);
                        reader.consume(pos + 1);
                        return Ok(LineRead::Line(std::mem::take(&mut self.buf)));
                    }
                    reader.consume(pos + 1);
                    self.buf.clear();
                    return Ok(LineRead::Oversized);
                }
                None => {
                    let n = buf.len();
                    if self.buf.len() + n <= self.cap {
                        self.buf.extend_from_slice(buf);
                        reader.consume(n);
                    } else {
                        reader.consume(n);
                        self.buf.clear();
                        self.discarding = true;
                    }
                }
            }
        }
    }
}

/// Lines (requests or responses) larger than this are dropped.
const LINE_CAP: usize = 32 << 20;

fn replica_reader(fleet: &Arc<Fleet>, replica: &Arc<Replica>, epoch: u64, mut reader: BufReader<TcpStream>) {
    let mut lines = LineReader::new(LINE_CAP);
    loop {
        let read = match lines.next_line(&mut reader) {
            Ok(r) => r,
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => continue,
            Err(_) => break,
        };
        let bytes = match read {
            LineRead::Eof => break,
            LineRead::Oversized => continue,
            LineRead::Line(b) => b,
        };
        let Ok(text) = std::str::from_utf8(&bytes) else { continue };
        let Ok(v) = serde_json::from_str(text) else { continue };
        let Some(rid) = v.get("id").and_then(Value::as_u64).filter(|&r| r != 0) else {
            continue;
        };
        replica.untrack_inflight(rid);
        match fleet.pending.peek(rid, |d| matches!(d, Deliver::Internal(_))) {
            None => {
                fleet.metrics.duplicates.inc(1);
            }
            Some(true) => {
                if let Some(Deliver::Internal(tx)) = fleet.pending.take(rid) {
                    let _ = tx.send(v);
                }
            }
            Some(false) => {
                let status = v.get("status").and_then(Value::as_str).unwrap_or("");
                let code = v.get("code").and_then(Value::as_str).unwrap_or("");
                if status == "error" && retryable_code(code) && !fleet.draining.load(Ordering::Relaxed) {
                    fleet.rmetrics[replica.id].failures.inc(1);
                    handle_failure(fleet, rid, Some(text.to_string()));
                } else if let Some(Deliver::Client { id, sink, .. }) = fleet.pending.take(rid) {
                    answer_client(fleet, &sink, v, id);
                } else {
                    fleet.metrics.duplicates.inc(1);
                }
            }
        }
    }
    if replica.mark_down(epoch) {
        on_replica_down(fleet, replica);
    }
}

// ---------------------------------------------------------------------------
// Supervisor: revive (spawn/connect + resync + attach)
// ---------------------------------------------------------------------------

/// Brings a down replica back: connect/respawn, handshake, replay the
/// delta suffix it missed, attach the reader thread, mark routable.
fn revive(fleet: &Arc<Fleet>, replica: &Arc<Replica>) -> Result<(), String> {
    let seen_before = replica.epoch() > 0;
    let mut hs: Handshake = replica.connect(fleet.opts.probe_timeout.max(Duration::from_secs(2)))?;
    // Resync and attach under the reload lock: the fleet generation and
    // delta log cannot shift mid-replay, and a two-phase swap never runs
    // concurrently with a half-synced replica joining.
    let _guard = fleet.reload_lock.lock().unwrap_or_else(|p| p.into_inner());
    // The first replica ever seen defines the artifact's base generation
    // (unless a durable delta log already restored it at startup, in which
    // case the exchange fails and the disk-derived base stands).
    if fleet
        .base_generation
        .compare_exchange(0, hs.generation, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        let _ = fleet.generation.compare_exchange(0, hs.generation, Ordering::Relaxed, Ordering::Relaxed);
    }
    // The base is known from here on: open (or create) the delta log. A
    // coordinator that cannot make its log durable refuses the replica —
    // and, at bring-up, refuses to run.
    fleet.ensure_wal(fleet.base_generation.load(Ordering::Relaxed))?;
    let base = fleet.base_generation.load(Ordering::Relaxed);
    let fleet_gen = fleet.generation.load(Ordering::Relaxed);
    let mut gen = hs.generation;
    if gen < base || gen > fleet_gen {
        return Err(format!("replica {}: generation {gen} outside the fleet's [{base}, {fleet_gen}] — wrong artifact?", replica.id));
    }
    let log = fleet.delta_log.lock().unwrap_or_else(|p| p.into_inner());
    let replay = &log[(gen - base) as usize..];
    if !replay.is_empty() {
        // Replayed reloads rebuild the index synchronously; give them the
        // reload budget, not the probe budget the handshake used.
        hs.stream.set_read_timeout(Some(fleet.opts.reload_timeout)).map_err(|e| e.to_string())?;
    }
    for delta in replay {
        let mut req = delta.clone();
        set_field(&mut req, "type", json!("reload"));
        set_field(&mut req, "id", json!(0));
        let resp =
            sync_request(&mut hs.stream, &mut hs.reader, &req.to_string()).map_err(|e| format!("replica {}: resync replay: {e}", replica.id))?;
        if resp.get("status").and_then(Value::as_str) != Some("ok") {
            return Err(format!("replica {}: resync replay rejected: {resp}", replica.id));
        }
        gen = resp.get("generation").and_then(Value::as_u64).unwrap_or(gen);
    }
    if gen != fleet_gen {
        return Err(format!("replica {}: resync ended at generation {gen}, fleet is at {fleet_gen}", replica.id));
    }
    if !replay.is_empty() {
        fleet.metrics.resyncs.inc(1);
        eprintln!("fleet: replica {} resynced {} delta(s) to generation {gen}", replica.id, replay.len());
    }
    drop(log);
    // Attached readers poll with a short timeout (so a socket shutdown or
    // process exit is noticed promptly without busy-waiting).
    hs.stream.set_read_timeout(Some(Duration::from_millis(100))).map_err(|e| e.to_string())?;
    let write_half = hs.stream.try_clone().map_err(|e| e.to_string())?;
    let epoch = replica.attach(write_half, hs.addr.clone(), gen, hs.draining);
    if seen_before {
        fleet.rmetrics[replica.id].restarts.inc(1);
    }
    fleet.rmetrics[replica.id].up.set(1);
    fleet.metrics.replicas_up.set(fleet.up_count());
    println!("replica {} pid {} at {}", replica.id, replica.pid.load(Ordering::Relaxed), hs.addr);
    let _ = std::io::stdout().flush();
    let fleet = Arc::clone(fleet);
    let replica = Arc::clone(replica);
    let reader = hs.reader;
    std::thread::spawn(move || replica_reader(&fleet, &replica, epoch, reader));
    Ok(())
}

fn supervisor_loop(fleet: &Arc<Fleet>) {
    let n = fleet.replicas.len();
    let mut next_attempt = vec![Instant::now(); n];
    let mut failures = vec![0u32; n];
    while !fleet.draining.load(Ordering::Relaxed) {
        for (i, replica) in fleet.replicas.iter().enumerate() {
            if replica.is_up() || Instant::now() < next_attempt[i] {
                continue;
            }
            match revive(fleet, replica) {
                Ok(()) => failures[i] = 0,
                Err(e) => {
                    failures[i] = failures[i].saturating_add(1);
                    next_attempt[i] = Instant::now() + fleet.opts.backoff.delay(failures[i].min(6), i as u64);
                    eprintln!("fleet: replica {i}: revive failed: {e}");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------------
// Health probing
// ---------------------------------------------------------------------------

/// Sends one internal request to a replica and waits for its response.
fn internal_request(fleet: &Fleet, replica: &Arc<Replica>, body: &mut Value, timeout: Duration) -> Result<Value, String> {
    let rid = fleet.pending.next_rid();
    set_field(body, "id", json!(rid));
    let line = body.to_string();
    let (tx, rx) = mpsc::channel();
    fleet.pending.admit_with_rid(Deliver::Internal(tx), line.clone(), rid);
    replica.track_inflight(rid);
    if !replica.send_line(&line) {
        replica.untrack_inflight(rid);
        let _ = fleet.pending.take(rid);
        return Err("send failed".into());
    }
    match rx.recv_timeout(timeout) {
        Ok(v) => Ok(v),
        Err(_) => {
            // Remove the probe entry; a late answer becomes a counted
            // duplicate instead of a leak.
            let _ = fleet.pending.take(rid);
            replica.untrack_inflight(rid);
            Err(format!("no response within {timeout:?}"))
        }
    }
}

fn health_loop(fleet: &Arc<Fleet>) {
    while !fleet.draining.load(Ordering::Relaxed) {
        std::thread::sleep(fleet.opts.health_interval);
        if fleet.draining.load(Ordering::Relaxed) {
            return;
        }
        // Never probe mid-reload: a prepare's index rebuild runs on the
        // replica's connection thread and would look like a hang.
        let Ok(_guard) = fleet.reload_lock.try_lock() else { continue };
        for replica in &fleet.replicas {
            if !replica.is_up() {
                continue;
            }
            let epoch = replica.epoch();
            match internal_request(fleet, replica, &mut json!({"type": "health"}), fleet.opts.probe_timeout) {
                Ok(v) => {
                    let draining = v.get("draining").and_then(Value::as_bool).unwrap_or(false);
                    if draining != replica.draining.swap(draining, Ordering::Relaxed) && draining {
                        eprintln!("fleet: replica {} draining; routing around it", replica.id);
                    }
                    let gen = v.get("generation").and_then(Value::as_u64).unwrap_or(0);
                    replica.generation.store(gen, Ordering::Relaxed);
                    if gen != fleet.generation.load(Ordering::Relaxed) {
                        // Alive but on the wrong generation (missed a swap
                        // without dying): cut it loose, the supervisor
                        // resyncs it from the delta log.
                        if replica.mark_down(epoch) {
                            eprintln!(
                                "fleet: replica {} at generation {gen}, fleet at {}; forcing resync",
                                replica.id,
                                fleet.generation.load(Ordering::Relaxed)
                            );
                            on_replica_down(fleet, replica);
                        }
                    }
                }
                Err(e) => {
                    if replica.mark_down(epoch) {
                        eprintln!("fleet: replica {} probe failed ({e}); disconnecting", replica.id);
                        fleet.rmetrics[replica.id].failures.inc(1);
                        on_replica_down(fleet, replica);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Two-phase fleet reload
// ---------------------------------------------------------------------------

fn fleet_reload(fleet: &Arc<Fleet>, client_id: Value, request: &Value, sink: &Sink) {
    let _guard = fleet.reload_lock.lock().unwrap_or_else(|p| p.into_inner());
    if fleet.draining.load(Ordering::Relaxed) {
        respond_control(fleet, sink, error_value("shedding", "fleet is draining"), client_id);
        return;
    }
    if fleet.wal_failed.load(Ordering::Relaxed) {
        respond_control(
            fleet,
            sink,
            error_value("internal", "delta log failed on an earlier commit; fleet reloads are disabled (extraction continues)"),
            client_id,
        );
        return;
    }
    let ups: Vec<Arc<Replica>> = fleet.replicas.iter().filter(|r| r.is_up()).cloned().collect();
    if ups.is_empty() {
        respond_control(fleet, sink, error_value("internal", "no replicas are up"), client_id);
        return;
    }
    // The delta body shipped to replicas and logged for resync: the client
    // request minus its envelope fields.
    let mut body = Map::new();
    if let Some(obj) = request.as_object() {
        for (k, v) in obj.iter() {
            if k != "type" && k != "id" {
                body.insert(k.clone(), v.clone());
            }
        }
    }
    let delta = Value::Object(body);
    let target = fleet.generation.load(Ordering::Relaxed) + 1;

    // Phase 1: prepare everywhere. Every up replica must finish building
    // generation `target` before anything swaps.
    let mut failures: Vec<String> = Vec::new();
    for replica in &ups {
        let mut req = delta.clone();
        set_field(&mut req, "type", json!("prepare"));
        match internal_request(fleet, replica, &mut req, fleet.opts.reload_timeout) {
            Ok(v) if v.get("status").and_then(Value::as_str) == Some("ok") => {
                let prepared = v.get("prepared_generation").and_then(Value::as_u64);
                if prepared != Some(target) {
                    failures.push(format!("replica {}: prepared generation {prepared:?}, wanted {target}", replica.id));
                }
            }
            Ok(v) => failures.push(format!("replica {}: {v}", replica.id)),
            Err(e) => failures.push(format!("replica {}: {e}", replica.id)),
        }
    }
    if !failures.is_empty() {
        // Abort: nothing was activated, every replica still serves the old
        // generation, and stale pending generations are replaced by the
        // next prepare (or invalidated by a direct apply). Mixed serving
        // states are impossible from this path.
        respond_control(fleet, sink, error_value("internal", &format!("prepare failed; fleet unchanged: {}", failures.join("; "))), client_id);
        return;
    }

    // Phase 2: activate everywhere. A replica that fails here is cut loose
    // and resynced by the supervisor — it rejoins at `target` or not at all.
    let mut acked = 0usize;
    for replica in &ups {
        let epoch = replica.epoch();
        match internal_request(fleet, replica, &mut json!({"type": "activate", "generation": target}), fleet.opts.reload_timeout) {
            Ok(v) if v.get("status").and_then(Value::as_str) == Some("ok") => {
                replica.generation.store(target, Ordering::Relaxed);
                acked += 1;
            }
            Ok(v) => {
                eprintln!("fleet: replica {} refused activate {target} ({v}); forcing resync", replica.id);
                if replica.mark_down(epoch) {
                    on_replica_down(fleet, replica);
                }
            }
            Err(e) => {
                eprintln!("fleet: replica {} lost mid-activate ({e}); will resync on rejoin", replica.id);
                if replica.mark_down(epoch) {
                    on_replica_down(fleet, replica);
                }
            }
        }
    }
    if acked == 0 {
        respond_control(
            fleet,
            sink,
            error_value("internal", "no replica activated the new generation; fleet will reconverge on the old one"),
            client_id,
        );
        return;
    }
    fleet.generation.store(target, Ordering::Relaxed);
    // The in-memory log and generation always reflect what the replicas
    // actually serve (they are at `target` now, WAL or not); durability is
    // settled before the ack.
    fleet.delta_log.lock().unwrap_or_else(|p| p.into_inner()).push(delta.clone());
    fleet.metrics.reloads.inc(1);
    fleet.metrics.generation.set(target.min(i64::MAX as u64) as i64);
    if let Err(e) = fleet.wal_commit(target, &delta) {
        // The fleet converged on `target` but the log did not: tell the
        // client the reload is NOT durable (a coordinator restart may
        // forget it) instead of acking a promise the disk cannot keep.
        respond_control(fleet, sink, error_value("internal", &format!("reload activated fleet-wide but is not durable: {e}")), client_id);
        return;
    }
    fleet.maybe_compact();
    let ok = json!({
        "status": "ok",
        "generation": target,
        "replicas_acked": acked,
        "replicas_total": ups.len(),
    });
    respond_control(fleet, sink, ok, client_id);
}

/// Control-plane responses bypass the served/shed/failed ledger (that
/// partition is for extract requests, mirroring `aeetes serve`).
fn respond_control(_fleet: &Fleet, sink: &Sink, mut response: Value, client_id: Value) {
    set_field(&mut response, "id", client_id);
    respond(sink, &response.to_string());
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

fn stats_value(fleet: &Fleet) -> Value {
    fleet.metrics.pending.set(fleet.pending.len().min(i64::MAX as usize) as i64);
    fleet.metrics.replicas_up.set(fleet.up_count());
    let replicas: Vec<Value> = fleet
        .replicas
        .iter()
        .map(|r| {
            let m = &fleet.rmetrics[r.id];
            json!({
                "replica": r.id,
                "up": r.is_up(),
                "draining": r.draining.load(Ordering::Relaxed),
                "generation": r.generation.load(Ordering::Relaxed),
                "addr": r.addr(),
                "pid": r.pid.load(Ordering::Relaxed),
                "routed": m.routed.value(),
                "failures": m.failures.value(),
                "restarts": m.restarts.value(),
            })
        })
        .collect();
    let m = &fleet.metrics;
    json!({
        "uptime_ms": fleet.start.elapsed().as_millis() as u64,
        "generation": fleet.generation.load(Ordering::Relaxed),
        "draining": fleet.draining.load(Ordering::Relaxed),
        "pending": fleet.pending.len(),
        "replicas_up": fleet.up_count(),
        "replicas": replicas,
        "routed": m.routed.value(),
        "retried": m.retried.value(),
        "failed_over": m.failed_over.value(),
        "resyncs": m.resyncs.value(),
        "duplicates": m.duplicates.value(),
        "reloads": m.reloads.value(),
        "served": m.answered_served.value(),
        "shed": m.answered_shed.value(),
        "failed": m.answered_failed.value(),
    })
}

/// Serves one client connection. Returns `true` when this connection asked
/// the fleet to shut down.
fn client_stream(fleet: &Arc<Fleet>, reader: &mut impl BufRead, sink: &Sink) -> bool {
    let mut lines = LineReader::new(LINE_CAP);
    loop {
        let read = match lines.next_line(reader) {
            Ok(r) => r,
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                if fleet.draining.load(Ordering::Relaxed) {
                    return false;
                }
                continue;
            }
            Err(_) => return false,
        };
        let bytes = match read {
            LineRead::Eof => return false,
            LineRead::Oversized => {
                respond_control(fleet, sink, error_value("too_large", &format!("request line exceeds {LINE_CAP} bytes")), Value::Null);
                continue;
            }
            LineRead::Line(b) => b,
        };
        let Ok(text) = std::str::from_utf8(&bytes) else {
            respond_control(fleet, sink, error_value("bad_request", "request line is not valid UTF-8"), Value::Null);
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let Ok(mut v) = serde_json::from_str(text) else {
            respond_control(fleet, sink, error_value("bad_request", "request line is not valid JSON"), Value::Null);
            continue;
        };
        let client_id = v.get("id").cloned().unwrap_or(Value::Null);
        let kind = v.get("type").and_then(Value::as_str).unwrap_or("").to_string();
        match kind.as_str() {
            "extract" => {
                if fleet.draining.load(Ordering::Relaxed) {
                    answer_client(fleet, sink, error_value("shedding", "fleet is draining"), client_id);
                    continue;
                }
                let rid = fleet.pending.next_rid();
                set_field(&mut v, "id", json!(rid));
                let expires = Instant::now() + fleet.opts.request_timeout;
                fleet
                    .pending
                    .admit_with_rid(Deliver::Client { id: client_id, sink: Arc::clone(sink), expires }, v.to_string(), rid);
                let _ = fleet.dispatch_tx.send(DispatchMsg { rid, not_before: Instant::now() });
            }
            "health" => {
                let draining = fleet.draining.load(Ordering::Relaxed);
                let response = json!({
                    "status": "ok",
                    "health": if draining { "draining" } else { "ok" },
                    "draining": draining,
                    "generation": fleet.generation.load(Ordering::Relaxed),
                    "replicas_up": fleet.up_count(),
                });
                respond_control(fleet, sink, response, client_id);
            }
            "stats" => {
                respond_control(fleet, sink, json!({"status": "ok", "stats": stats_value(fleet)}), client_id);
            }
            "metrics" => {
                fleet.metrics.pending.set(fleet.pending.len().min(i64::MAX as usize) as i64);
                fleet.metrics.replicas_up.set(fleet.up_count());
                fleet.metrics.generation.set(fleet.generation.load(Ordering::Relaxed).min(i64::MAX as u64) as i64);
                let snapshot = fleet.registry.snapshot();
                let metrics: Value = serde_json::from_str(&aeetes_obs::json(&snapshot)).unwrap_or(Value::Null);
                respond_control(fleet, sink, json!({"status": "ok", "metrics": metrics}), client_id);
            }
            "reload" => {
                fleet_reload(fleet, client_id, &v, sink);
            }
            "prepare" | "activate" => {
                respond_control(
                    fleet,
                    sink,
                    error_value("bad_request", "the coordinator runs prepare/activate itself; send `reload` and it ships two-phase"),
                    client_id,
                );
            }
            "shutdown" => {
                fleet.draining.store(true, Ordering::Relaxed);
                respond_control(fleet, sink, json!({"status": "ok", "draining": true}), client_id);
                return true;
            }
            other => {
                respond_control(fleet, sink, error_value("bad_request", &format!("unknown request type `{other}`")), client_id);
            }
        }
    }
}

fn handle_client(fleet: &Arc<Fleet>, stream: TcpStream) -> bool {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else { return false };
    let sink: Sink = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    client_stream(fleet, &mut reader, &sink)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs the coordinator until a `shutdown` request, then drains: waits for
/// pending work, answers leftovers as shed, shuts the replicas down.
pub fn run_fleet(opts: FleetOptions) -> Result<FleetSummary, String> {
    if opts.replicas.is_empty() {
        return Err("a fleet needs at least one replica".into());
    }
    let registry = Arc::new(MetricRegistry::new());
    let metrics = FleetMetrics::register(&registry);
    let wmetrics = WalMetrics::register(&registry);
    // Restore the durable delta log, if one survives on disk: the restarted
    // coordinator recovers its base generation, fleet generation, and the
    // resync log, so rejoining replicas are brought forward from disk state
    // instead of being refused by a coordinator with amnesia.
    let mut restored_wal: Option<Wal> = None;
    let mut restored_base = 0u64;
    let mut restored_log: Vec<Value> = Vec::new();
    if let Some(path) = opts.wal.as_ref().filter(|p| p.exists()) {
        let started = Instant::now();
        match Wal::open(path) {
            Ok((wal, replay)) => {
                restored_base = wal.base_generation();
                for record in &replay.records {
                    let text = std::str::from_utf8(&record.payload)
                        .map_err(|e| format!("{}: generation {} record: payload is not UTF-8: {e}", path.display(), record.generation))?;
                    let v: Value = serde_json::from_str(text)
                        .map_err(|e| format!("{}: generation {} record: payload is not JSON: {e}", path.display(), record.generation))?;
                    restored_log.push(v);
                }
                wmetrics.replayed_records.inc(replay.records.len() as u64);
                wmetrics.truncated_bytes.inc(replay.truncated_bytes);
                wmetrics.records.set(wal.record_count().min(i64::MAX as u64) as i64);
                wmetrics.bytes.set(wal.len_bytes().min(i64::MAX as u64) as i64);
                if !restored_log.is_empty() || replay.truncated_bytes > 0 {
                    eprintln!(
                        "fleet: restored {} delta(s) from {} (base generation {restored_base}, {} torn byte(s) truncated)",
                        restored_log.len(),
                        path.display(),
                        replay.truncated_bytes
                    );
                }
                restored_wal = Some(wal);
            }
            // Crash-while-creating debris (shorter than one fsynced header)
            // carries no committed record; it is recreated at the first
            // handshake. Anything else is real corruption: refuse to run
            // rather than silently forget acknowledged deltas.
            Err(WalError::HeaderTorn) => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
        wmetrics
            .recovery_nanos
            .set(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX).min(i64::MAX as u64) as i64);
    }
    let restored_gen = restored_base + restored_log.len() as u64;
    let replicas: Vec<Arc<Replica>> = opts.replicas.iter().cloned().enumerate().map(|(i, spec)| Arc::new(Replica::new(i, spec))).collect();
    let rmetrics: Vec<ReplicaMetrics> = replicas.iter().map(|r| metrics.replica(r.id)).collect();
    let (dispatch_tx, dispatch_rx) = mpsc::channel::<DispatchMsg>();
    let max_attempts = if opts.max_attempts == 0 { replicas.len() as u32 } else { opts.max_attempts };
    let fleet = Arc::new(Fleet {
        replicas,
        rmetrics,
        pending: PendingTable::new(max_attempts),
        metrics,
        registry,
        dispatch_tx,
        draining: AtomicBool::new(false),
        base_generation: AtomicU64::new(restored_base),
        generation: AtomicU64::new(restored_gen),
        delta_log: Mutex::new(restored_log),
        reload_lock: Mutex::new(()),
        wal: Mutex::new(restored_wal),
        wal_failed: AtomicBool::new(false),
        wmetrics,
        opts,
        start: Instant::now(),
        round_robin: AtomicUsize::new(0),
    });

    // Initial bring-up: every slot must come up before clients are
    // accepted, so the chaos harness (and operators) start from a known
    // fleet shape. Later deaths are the supervisor's job.
    for replica in &fleet.replicas {
        revive(&fleet, replica).map_err(|e| format!("initial bring-up: {e}"))?;
    }
    fleet.metrics.generation.set(fleet.generation.load(Ordering::Relaxed).min(i64::MAX as u64) as i64);

    let listener = TcpListener::bind(&fleet.opts.listen).map_err(|e| format!("{}: {e}", fleet.opts.listen))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    let dispatcher = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || dispatcher_loop(&fleet, &dispatch_rx))
    };
    let supervisor = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || supervisor_loop(&fleet))
    };
    let health = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || health_loop(&fleet))
    };

    let mut handlers = Vec::new();
    for conn in listener.incoming() {
        if fleet.draining.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let fleet_for_conn = Arc::clone(&fleet);
        handlers.push(std::thread::spawn(move || {
            if handle_client(&fleet_for_conn, stream) {
                // Shutdown arrived here; wake the acceptor so it observes
                // the flag (the wake-up connection is never served).
                let _ = TcpStream::connect(local);
            }
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }

    // Drain: finish pending work within the deadline, then sweep.
    let deadline = Instant::now() + fleet.opts.drain;
    while !fleet.pending.is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    for (_rid, deliver) in fleet.pending.drain() {
        match deliver {
            Deliver::Client { id, sink, .. } => {
                answer_client(&fleet, &sink, error_value("shedding", "fleet drained before this request was answered"), id);
            }
            Deliver::Internal(tx) => {
                let _ = tx.send(error_value("shedding", "fleet drained"));
            }
        }
    }
    for replica in &fleet.replicas {
        replica.request_shutdown();
    }
    for replica in &fleet.replicas {
        replica.wait_child(Duration::from_secs(2));
        let epoch = replica.epoch();
        replica.mark_down(epoch);
    }
    let _ = dispatcher.join();
    let _ = supervisor.join();
    let _ = health.join();

    let summary = FleetSummary {
        served: fleet.metrics.answered_served.value(),
        shed: fleet.metrics.answered_shed.value(),
        failed: fleet.metrics.answered_failed.value(),
    };
    eprintln!("fleet: drained; served={} shed={} failed={}", summary.served, summary.shed, summary.failed);
    Ok(summary)
}
