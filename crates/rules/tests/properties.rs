//! Property tests for rule application and derivation invariants.

use aeetes_rules::{find_applications, select_non_conflict, DeriveConfig, DerivedDictionary, RuleSet};
use aeetes_text::{Dictionary, TokenId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct Instance {
    entities: Vec<Vec<u8>>,
    rules: Vec<(Vec<u8>, Vec<u8>)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    let tok = 0u8..10;
    let seq = |lo: usize, hi: usize| proptest::collection::vec(tok.clone(), lo..=hi);
    (proptest::collection::vec(seq(1, 6), 1..5), proptest::collection::vec((seq(1, 3), seq(1, 3)), 0..6))
        .prop_map(|(entities, rules)| Instance { entities, rules })
}

fn materialize(inst: &Instance) -> (Dictionary, RuleSet) {
    let ids: Vec<TokenId> = (0..10).map(TokenId).collect();
    let mut dict = Dictionary::new();
    for e in &inst.entities {
        dict.push_tokens(format!("{e:?}"), e.iter().map(|&i| ids[i as usize]).collect());
    }
    let mut rules = RuleSet::new();
    for (l, r) in &inst.rules {
        let lt: Vec<TokenId> = l.iter().map(|&i| ids[i as usize]).collect();
        let rt: Vec<TokenId> = r.iter().map(|&i| ids[i as usize]).collect();
        let _ = rules.push_tokens(lt, rt, 1.0);
    }
    (dict, rules)
}

proptest! {
    /// Every application reported by `find_applications` really matches the
    /// claimed side at the claimed span.
    #[test]
    fn applications_are_genuine(inst in instance()) {
        let (dict, rules) = materialize(&inst);
        for (_, e) in dict.iter() {
            for app in find_applications(e.tokens, &rules) {
                let side = rules.side_of(app.rule, app.side);
                let span = &e.tokens[app.start as usize..app.end() as usize];
                prop_assert_eq!(span, side);
            }
        }
    }

    /// The selected non-conflict groups have pairwise-disjoint spans across
    /// groups, identical spans within a group, and every application comes
    /// from the complete applicable set.
    #[test]
    fn non_conflict_selection_invariants(inst in instance()) {
        let (dict, rules) = materialize(&inst);
        for (_, e) in dict.iter() {
            let all = find_applications(e.tokens, &rules);
            let groups = select_non_conflict(e.tokens, &rules);
            for (gi, g) in groups.iter().enumerate() {
                prop_assert!(!g.is_empty());
                let span = (g[0].start, g[0].end());
                for app in g {
                    prop_assert_eq!((app.start, app.end()), span, "same span within a group");
                    prop_assert!(all.contains(app), "selected app not in Ac(e)");
                }
                for h in groups.iter().skip(gi + 1) {
                    prop_assert!(
                        g[0].end() <= h[0].start || h[0].end() <= g[0].start,
                        "groups overlap: {:?} vs {:?}", g[0], h[0]
                    );
                }
            }
        }
    }

    /// Derivation invariants: the origin variant comes first with weight 1
    /// and no rules; variants are distinct token sequences; every variant
    /// respects the per-entity cap; `variant_range` and `variants` agree.
    #[test]
    fn derivation_invariants(inst in instance()) {
        let (dict, rules) = materialize(&inst);
        let config = DeriveConfig { max_derived: 32, ..DeriveConfig::default() };
        let dd = DerivedDictionary::build(&dict, &rules, &config);
        for (eid, ent) in dict.iter() {
            let variants = dd.variants(eid);
            prop_assert!(variants.len() <= config.max_derived);
            if !ent.tokens.is_empty() {
                prop_assert!(!variants.is_empty());
                let first = variants.get(0).unwrap();
                prop_assert_eq!(first.tokens, ent.tokens, "origin first");
                prop_assert!(first.rules.is_empty());
                prop_assert_eq!(first.weight, 1.0);
            }
            let mut seen: HashSet<&[TokenId]> = HashSet::new();
            for v in variants {
                prop_assert_eq!(v.origin, eid);
                prop_assert!(seen.insert(v.tokens), "duplicate variant {:?}", v.tokens);
                prop_assert!(!v.tokens.is_empty());
            }
            let range = dd.variant_range(eid);
            prop_assert_eq!(range.len(), variants.len());
        }
        prop_assert_eq!(dd.origins(), dict.len());
        prop_assert_eq!(dd.len(), dd.iter().count());
    }

    /// `from_parts` round-trips `build` exactly.
    #[test]
    fn from_parts_round_trip(inst in instance()) {
        let (dict, rules) = materialize(&inst);
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        let parts: Vec<_> = dd.iter().map(|(_, d)| d.to_owned()).collect();
        let rebuilt = DerivedDictionary::from_parts(parts, dd.origins(), dd.stats().clone())
            .expect("valid parts");
        prop_assert_eq!(rebuilt.len(), dd.len());
        for (eid, _) in dict.iter() {
            let a: Vec<_> = dd.variants(eid).iter().map(|d| d.tokens).collect();
            let b: Vec<_> = rebuilt.variants(eid).iter().map(|d| d.tokens).collect();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(rebuilt.stats(), dd.stats());
    }

    /// Applying a weighted rule chain keeps weights in (0, 1].
    #[test]
    fn weights_stay_in_unit_interval(inst in instance(), w in 0.05f64..1.0) {
        let ids: Vec<TokenId> = (0..10).map(TokenId).collect();
        let mut dict = Dictionary::new();
        for e in &inst.entities {
            dict.push_tokens(format!("{e:?}"), e.iter().map(|&i| ids[i as usize]).collect());
        }
        let mut rules = RuleSet::new();
        for (l, r) in &inst.rules {
            let lt: Vec<TokenId> = l.iter().map(|&i| ids[i as usize]).collect();
            let rt: Vec<TokenId> = r.iter().map(|&i| ids[i as usize]).collect();
            let _ = rules.push_tokens(lt, rt, w);
        }
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        for (_, d) in dd.iter() {
            prop_assert!(d.weight > 0.0 && d.weight <= 1.0);
            let expected = w.powi(d.rules.len() as i32);
            prop_assert!((d.weight - expected).abs() < 1e-9);
        }
    }
}
