//! Applicable rules, conflicts, and non-conflict rule-set selection.
//!
//! Paper §2.1 and §5: a rule is *applicable* to an entity when one of its
//! sides occurs as a contiguous token subsequence; two applicable rules
//! *conflict* when their matched spans overlap. The non-conflict set `A(e)`
//! is chosen by building a hypergraph whose vertices group applications with
//! the same matched span (same left-hand occurrence), weighting each vertex
//! by its group size, and greedily approximating the maximum-weight clique.

use crate::rule::{RuleId, RuleSet, Side};
use aeetes_text::TokenId;

/// One occurrence of a rule side inside an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Application {
    /// The matching rule.
    pub rule: RuleId,
    /// Which side of the rule occurred in the entity.
    pub side: Side,
    /// Start token position of the match in the entity.
    pub start: u32,
    /// Number of entity tokens matched.
    pub len: u32,
}

impl Application {
    /// One-past-the-end position of the matched span.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Whether two applications rewrite overlapping entity tokens.
    pub fn conflicts(&self, other: &Application) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Finds every occurrence of every rule side in `entity` (the complete
/// applicable set `Ac(e)`).
pub fn find_applications(entity: &[TokenId], rules: &RuleSet) -> Vec<Application> {
    let mut out = Vec::new();
    for (pos, &t) in entity.iter().enumerate() {
        for &(rid, side) in rules.heads(t) {
            let pat = rules.side(rid, side);
            if pat.len() <= entity.len() - pos && entity[pos..pos + pat.len()] == *pat {
                out.push(Application { rule: rid, side, start: pos as u32, len: pat.len() as u32 });
            }
        }
    }
    out
}

/// The hypergraph of §5: vertices group applications sharing a matched span;
/// vertex weight = group size; an edge joins every pair of span-disjoint
/// vertices.
#[derive(Debug)]
pub struct ConflictGraph {
    /// `vertices[v]` = indices into the application list sharing one span.
    pub vertices: Vec<Vec<usize>>,
    /// `spans[v]` = the common `(start, end)` span of vertex `v`.
    pub spans: Vec<(u32, u32)>,
}

impl ConflictGraph {
    /// Groups `apps` into vertices by matched span.
    pub fn build(apps: &[Application]) -> Self {
        // Sort group keys for determinism, then bucket.
        let mut order: Vec<usize> = (0..apps.len()).collect();
        order.sort_by_key(|&i| (apps[i].start, apps[i].len, apps[i].rule, apps[i].side as u8));
        let mut vertices: Vec<Vec<usize>> = Vec::new();
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for i in order {
            let span = (apps[i].start, apps[i].end());
            match spans.last() {
                // `spans` and `vertices` are pushed in lockstep (the `_`
                // arm below is the only writer), so `spans.last()` being
                // `Some` proves `vertices` is non-empty: the expect is
                // unreachable, not a recoverable condition.
                Some(&s) if s == span => vertices.last_mut().expect("non-empty").push(i),
                _ => {
                    spans.push(span);
                    vertices.push(vec![i]);
                }
            }
        }
        Self { vertices, spans }
    }

    /// Whether vertices `a` and `b` are adjacent (span-disjoint).
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        let (s1, e1) = self.spans[a];
        let (s2, e2) = self.spans[b];
        e1 <= s2 || e2 <= s1
    }

    /// Greedy maximum-weight-clique approximation (§5): repeatedly add the
    /// heaviest vertex compatible with everything chosen so far. Ties break
    /// toward the earlier span for determinism. Returns vertex indices.
    pub fn greedy_clique(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.vertices.len()).collect();
        // Heaviest first; ties by span start then end.
        order.sort_by_key(|&v| (std::cmp::Reverse(self.vertices[v].len()), self.spans[v]));
        let mut clique: Vec<usize> = Vec::new();
        for v in order {
            if clique.iter().all(|&u| self.adjacent(u, v)) {
                clique.push(v);
            }
        }
        clique.sort_by_key(|&v| self.spans[v]);
        clique
    }

    /// Exact maximum-weight clique (the optimal the paper notes is
    /// NP-complete, §5). Because every vertex is a span and adjacency is
    /// span-disjointness, the graph is an **interval graph**, so the optimum
    /// reduces to weighted interval scheduling — solved exactly in
    /// `O(V log V)` by dynamic programming over spans sorted by end
    /// position. Returns vertex indices sorted by span.
    pub fn exact_clique(&self) -> Vec<usize> {
        let n = self.vertices.len();
        if n == 0 {
            return Vec::new();
        }
        // Sort vertex indices by span end.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (self.spans[v].1, self.spans[v].0));
        let ends: Vec<u32> = order.iter().map(|&v| self.spans[v].1).collect();
        // p[i] = number of sorted vertices whose span ends at or before the
        // start of sorted vertex i (binary search over `ends`).
        let mut best = vec![0usize; n + 1]; // best weight using first i sorted vertices
        let mut take = vec![false; n];
        for i in 0..n {
            let v = order[i];
            let start = self.spans[v].0;
            let p = ends[..i].partition_point(|&e| e <= start);
            let with = best[p] + self.vertices[v].len();
            let without = best[i];
            if with > without {
                best[i + 1] = with;
                take[i] = true;
            } else {
                best[i + 1] = without;
            }
        }
        // Backtrack.
        let mut clique = Vec::new();
        let mut i = n;
        while i > 0 {
            if take[i - 1] {
                let v = order[i - 1];
                clique.push(v);
                let start = self.spans[v].0;
                i = ends[..i - 1].partition_point(|&e| e <= start);
            } else {
                i -= 1;
            }
        }
        clique.sort_by_key(|&v| self.spans[v]);
        clique
    }
}

/// Selects the non-conflict applicable set `A(e)` for `entity`:
/// the applications of the greedy clique, grouped per vertex
/// (each inner `Vec` holds the alternative rewrites of one span).
pub fn select_non_conflict(entity: &[TokenId], rules: &RuleSet) -> Vec<Vec<Application>> {
    select_with(entity, rules, ConflictGraph::greedy_clique)
}

/// Like [`select_non_conflict`] but with the *exact* maximum-weight
/// selection (weighted interval scheduling over the span-interval graph).
pub fn select_non_conflict_exact(entity: &[TokenId], rules: &RuleSet) -> Vec<Vec<Application>> {
    select_with(entity, rules, ConflictGraph::exact_clique)
}

fn select_with(entity: &[TokenId], rules: &RuleSet, clique: impl Fn(&ConflictGraph) -> Vec<usize>) -> Vec<Vec<Application>> {
    let apps = find_applications(entity, rules);
    if apps.is_empty() {
        return Vec::new();
    }
    let graph = ConflictGraph::build(&apps);
    clique(&graph).into_iter().map(|v| graph.vertices[v].iter().map(|&i| apps[i]).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::{Interner, Tokenizer};

    fn ctx() -> (Interner, Tokenizer) {
        (Interner::new(), Tokenizer::default())
    }

    fn entity(s: &str, i: &mut Interner, t: &Tokenizer) -> Vec<TokenId> {
        t.tokenize(s, i)
    }

    #[test]
    fn finds_lhs_and_rhs_occurrences() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        rs.push_str("UQ", "University of Queensland", &t, &mut i).unwrap();
        let e1 = entity("UQ AU", &mut i, &t);
        let e2 = entity("University of Queensland AU", &mut i, &t);
        let a1 = find_applications(&e1, &rs);
        let a2 = find_applications(&e2, &rs);
        assert_eq!(a1.len(), 1);
        assert_eq!((a1[0].side, a1[0].start, a1[0].len), (Side::Lhs, 0, 1));
        assert_eq!(a2.len(), 1);
        assert_eq!((a2[0].side, a2[0].start, a2[0].len), (Side::Rhs, 0, 3));
    }

    #[test]
    fn multiple_occurrences_found() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        rs.push_str("st", "street", &t, &mut i).unwrap();
        let e = entity("st mary st", &mut i, &t);
        let apps = find_applications(&e, &rs);
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].start, 0);
        assert_eq!(apps[1].start, 2);
    }

    #[test]
    fn conflict_is_span_overlap() {
        let a = Application { rule: RuleId(0), side: Side::Lhs, start: 0, len: 2 };
        let b = Application { rule: RuleId(1), side: Side::Lhs, start: 1, len: 1 };
        let c = Application { rule: RuleId(2), side: Side::Lhs, start: 2, len: 1 };
        assert!(a.conflicts(&b));
        assert!(!a.conflicts(&c));
        assert!(!b.conflicts(&c));
    }

    /// The paper's Figure 7 scenario: entity {a,b,c,d}; r1,r2,r3 share lhs
    /// {a,b}; r4 has lhs {c}; r5 has lhs {d}; r6 has lhs {b,c}; r7 {a,b,c,d}.
    /// Greedy picks v1{r1,r2,r3}, then v2{r4}, v3{r5} → 5 rules.
    #[test]
    fn figure7_greedy_clique() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        // lhs -> unique rhs tokens
        rs.push_str("a b", "x1", &t, &mut i).unwrap(); // r1
        rs.push_str("a b", "x2", &t, &mut i).unwrap(); // r2
        rs.push_str("a b", "x3", &t, &mut i).unwrap(); // r3
        rs.push_str("c", "x4", &t, &mut i).unwrap(); // r4
        rs.push_str("d", "x5", &t, &mut i).unwrap(); // r5
        rs.push_str("b c", "x6", &t, &mut i).unwrap(); // r6
        rs.push_str("a b c d", "x7", &t, &mut i).unwrap(); // r7
        let e = entity("a b c d", &mut i, &t);
        let groups = select_non_conflict(&e, &rs);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(groups.len(), 3, "three span groups chosen");
        assert_eq!(total, 5, "five rules selected, as in Example 5.2");
        // Spans must be pairwise disjoint.
        for (gi, g) in groups.iter().enumerate() {
            for h in groups.iter().skip(gi + 1) {
                assert!(!g[0].conflicts(&h[0]));
            }
        }
    }

    #[test]
    fn no_rules_no_applications() {
        let (mut i, t) = ctx();
        let rs = RuleSet::new();
        let e = entity("a b c", &mut i, &t);
        assert!(select_non_conflict(&e, &rs).is_empty());
    }

    #[test]
    fn same_span_groups_into_one_vertex() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        rs.push_str("ny", "new york", &t, &mut i).unwrap();
        rs.push_str("ny", "big apple", &t, &mut i).unwrap();
        let e = entity("ny marathon", &mut i, &t);
        let groups = select_non_conflict(&e, &rs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    /// The exact selection dominates greedy in total weight on every input
    /// and is itself a valid clique.
    #[test]
    fn exact_clique_dominates_greedy() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        // Craft a case where greedy is suboptimal: a heavy middle vertex
        // blocking two lighter ones whose sum is larger.
        rs.push_str("b c", "m1", &t, &mut i).unwrap();
        rs.push_str("b c", "m2", &t, &mut i).unwrap();
        rs.push_str("b c", "m3", &t, &mut i).unwrap(); // span (1,3), weight 3
        rs.push_str("a b", "l1", &t, &mut i).unwrap();
        rs.push_str("a b", "l2", &t, &mut i).unwrap(); // span (0,2), weight 2
        rs.push_str("c d", "r1", &t, &mut i).unwrap();
        rs.push_str("c d", "r2", &t, &mut i).unwrap(); // span (2,4), weight 2
        let e = entity("a b c d", &mut i, &t);
        let greedy = select_non_conflict(&e, &rs);
        let exact = select_non_conflict_exact(&e, &rs);
        let weight = |g: &Vec<Vec<Application>>| g.iter().map(Vec::len).sum::<usize>();
        assert_eq!(weight(&greedy), 3, "greedy grabs the heavy middle vertex");
        assert_eq!(weight(&exact), 4, "exact takes the two lighter sides");
        for (gi, g) in exact.iter().enumerate() {
            for h in exact.iter().skip(gi + 1) {
                assert!(!g[0].conflicts(&h[0]));
            }
        }
    }

    #[test]
    fn exact_clique_on_figure7() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        rs.push_str("a b", "x1", &t, &mut i).unwrap();
        rs.push_str("a b", "x2", &t, &mut i).unwrap();
        rs.push_str("a b", "x3", &t, &mut i).unwrap();
        rs.push_str("c", "x4", &t, &mut i).unwrap();
        rs.push_str("d", "x5", &t, &mut i).unwrap();
        rs.push_str("b c", "x6", &t, &mut i).unwrap();
        rs.push_str("a b c d", "x7", &t, &mut i).unwrap();
        let e = entity("a b c d", &mut i, &t);
        let exact = select_non_conflict_exact(&e, &rs);
        assert_eq!(exact.iter().map(Vec::len).sum::<usize>(), 5, "Example 5.2's optimum");
    }

    #[test]
    fn pattern_longer_than_entity_is_skipped() {
        let (mut i, t) = ctx();
        let mut rs = RuleSet::new();
        rs.push_str("new york city", "nyc", &t, &mut i).unwrap();
        let e = entity("new york", &mut i, &t);
        assert!(find_applications(&e, &rs).is_empty());
    }
}
