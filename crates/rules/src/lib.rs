//! Synonym rules for the Aeetes framework.
//!
//! A synonym rule `⟨lhs ⇔ rhs⟩` states that two token sequences carry the
//! same meaning (paper §1). This crate implements everything the framework
//! needs to *use* such rules off-line:
//!
//! * [`RuleSet`] — the rule table, with fast lookup of rule sides occurring
//!   inside an entity;
//! * applicability and conflict analysis, including the hypergraph +
//!   greedy maximum-weight-clique selection of a non-conflict rule set
//!   (paper §5);
//! * [`DerivedDictionary`] — the off-line expansion `E = ⋃ D(e)` of every
//!   dictionary entity under all combinations of its non-conflict rules
//!   (paper §2.1).
//!
//! # Example
//!
//! ```
//! use aeetes_text::{Dictionary, Interner, Tokenizer};
//! use aeetes_rules::{RuleSet, DerivedDictionary, DeriveConfig};
//!
//! let mut int = Interner::new();
//! let tok = Tokenizer::default();
//! let mut dict = Dictionary::new();
//! dict.push("UQ AU", &tok, &mut int);
//!
//! let mut rules = RuleSet::new();
//! rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
//! rules.push_str("AU", "Australia", &tok, &mut int).unwrap();
//!
//! let derived = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
//! // {UQ AU} × {UQ ⇔ U. of Queensland} × {AU ⇔ Australia} → 4 variants
//! assert_eq!(derived.len(), 4);
//! ```

mod apply;
mod derive;
mod discover;
mod rule;

pub use apply::{find_applications, select_non_conflict, select_non_conflict_exact, Application, ConflictGraph};
pub use derive::{DeriveConfig, DeriveStats, DerivedDictionary, DerivedEntity, DerivedId, DerivedRef, Variants};
pub use discover::{add_discovered, discover_abbreviations, DiscoveredRule, DiscoveryConfig, DiscoveryKind};
pub use rule::{Rule, RuleError, RuleId, RuleSet, Side};
