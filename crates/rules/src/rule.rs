//! The synonym rule table.

use aeetes_text::{Interner, TokenId, Tokenizer};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a rule in a [`RuleSet`].
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

// SAFETY: repr(transparent) over u32 — fixed layout, any bit pattern valid.
unsafe impl aeetes_frozen::Pod for RuleId {}

impl RuleId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A bidirectional synonym rule `⟨lhs ⇔ rhs⟩`.
///
/// Both sides are non-empty token sequences. `weight ∈ (0, 1]` supports the
/// weighted-rule extension (paper §8 future work); the classic semantics use
/// weight `1.0` everywhere.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Left-hand side tokens.
    pub lhs: Vec<TokenId>,
    /// Right-hand side tokens.
    pub rhs: Vec<TokenId>,
    /// Confidence weight in `(0, 1]`; `1.0` for classic (unweighted) rules.
    pub weight: f64,
}

/// Errors when inserting rules.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// A rule side tokenized to zero tokens.
    EmptySide,
    /// Both sides are the identical token sequence (the rule is a no-op).
    Trivial,
    /// The weight is not in `(0, 1]`.
    BadWeight(f64),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::EmptySide => write!(f, "rule side tokenizes to zero tokens"),
            RuleError::Trivial => write!(f, "rule rewrites a sequence to itself"),
            RuleError::BadWeight(w) => write!(f, "rule weight {w} outside (0, 1]"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A table of synonym rules with a first-token lookup index.
///
/// The index maps the first token of every rule side to the `(rule, side)`
/// pairs starting with it, so scanning an entity for applicable rules costs
/// `O(|e| · avg bucket)` instead of `O(|e| · |R|)`.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    /// first token of a side → (rule, which side starts there)
    heads: HashMap<TokenId, Vec<(RuleId, Side)>, std::hash::BuildHasherDefault<TokenIdHasher>>,
}

/// Mixes the single `u32` of a [`TokenId`] key (splitmix64 finalizer) —
/// SipHash shows up in rule-set reassembly on the frozen open path, and
/// `heads` never hashes anything but token ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenIdHasher(u64);

impl std::hash::Hasher for TokenIdHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }
    fn write_u32(&mut self, i: u32) {
        self.0 = i as u64;
    }
}

/// Which side of a rule matched inside an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Lhs,
    Rhs,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates for `n` more rules (a deserializer's bulk-load hint).
    pub fn reserve(&mut self, n: usize) {
        self.rules.reserve(n);
        self.heads.reserve(n);
    }

    /// Adds a rule from raw strings with weight `1.0`.
    pub fn push_str(&mut self, lhs: &str, rhs: &str, tokenizer: &Tokenizer, interner: &mut Interner) -> Result<RuleId, RuleError> {
        let l = tokenizer.tokenize(lhs, interner);
        let r = tokenizer.tokenize(rhs, interner);
        self.push_tokens(l, r, 1.0)
    }

    /// Adds a weighted rule from raw strings.
    pub fn push_weighted_str(
        &mut self,
        lhs: &str,
        rhs: &str,
        weight: f64,
        tokenizer: &Tokenizer,
        interner: &mut Interner,
    ) -> Result<RuleId, RuleError> {
        let l = tokenizer.tokenize(lhs, interner);
        let r = tokenizer.tokenize(rhs, interner);
        self.push_tokens(l, r, weight)
    }

    /// Adds a pre-tokenized rule.
    pub fn push_tokens(&mut self, lhs: Vec<TokenId>, rhs: Vec<TokenId>, weight: f64) -> Result<RuleId, RuleError> {
        if lhs.is_empty() || rhs.is_empty() {
            return Err(RuleError::EmptySide);
        }
        if lhs == rhs {
            return Err(RuleError::Trivial);
        }
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(RuleError::BadWeight(weight));
        }
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule set overflow"));
        self.heads.entry(lhs[0]).or_default().push((id, Side::Lhs));
        self.heads.entry(rhs[0]).or_default().push((id, Side::Rhs));
        self.rules.push(Rule { lhs, rhs, weight });
        Ok(id)
    }

    /// The rule with id `id`.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.idx()]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over `(id, rule)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules.iter().enumerate().map(|(i, r)| (RuleId(i as u32), r))
    }

    /// The token sequence of the given side of rule `id` (public accessor).
    pub fn side_of(&self, id: RuleId, side: Side) -> &[TokenId] {
        self.side(id, side)
    }

    /// The token sequence of the side *opposite* to `side` of rule `id` —
    /// i.e. what an [`crate::Application`] on `side` rewrites the match to.
    pub fn other_side_of(&self, id: RuleId, side: Side) -> &[TokenId] {
        self.other_side(id, side)
    }

    /// `(rule, side)` pairs whose side starts with token `t`.
    pub(crate) fn heads(&self, t: TokenId) -> &[(RuleId, Side)] {
        self.heads.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The token sequence of the given side of rule `id`.
    pub(crate) fn side(&self, id: RuleId, side: Side) -> &[TokenId] {
        let r = self.rule(id);
        match side {
            Side::Lhs => &r.lhs,
            Side::Rhs => &r.rhs,
        }
    }

    /// The token sequence of the *opposite* side of rule `id`.
    pub(crate) fn other_side(&self, id: RuleId, side: Side) -> &[TokenId] {
        let r = self.rule(id);
        match side {
            Side::Lhs => &r.rhs,
            Side::Rhs => &r.lhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Tokenizer, RuleSet) {
        (Interner::new(), Tokenizer::default(), RuleSet::new())
    }

    #[test]
    fn push_and_lookup() {
        let (mut i, t, mut rs) = setup();
        let id = rs.push_str("Big Apple", "New York", &t, &mut i).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rule(id).lhs.len(), 2);
        assert_eq!(rs.rule(id).rhs.len(), 2);
        assert_eq!(rs.rule(id).weight, 1.0);
    }

    #[test]
    fn empty_side_rejected() {
        let (mut i, t, mut rs) = setup();
        assert_eq!(rs.push_str("", "New York", &t, &mut i), Err(RuleError::EmptySide));
        assert_eq!(rs.push_str("NY", "...", &t, &mut i), Err(RuleError::EmptySide));
    }

    #[test]
    fn trivial_rule_rejected() {
        let (mut i, t, mut rs) = setup();
        assert_eq!(rs.push_str("usa", "USA", &t, &mut i), Err(RuleError::Trivial));
    }

    #[test]
    fn bad_weight_rejected() {
        let (mut i, t, mut rs) = setup();
        assert!(matches!(rs.push_weighted_str("a", "b", 0.0, &t, &mut i), Err(RuleError::BadWeight(_))));
        assert!(matches!(rs.push_weighted_str("a", "b", 1.5, &t, &mut i), Err(RuleError::BadWeight(_))));
        assert!(rs.push_weighted_str("a", "b", 0.5, &t, &mut i).is_ok());
    }

    #[test]
    fn heads_index_both_sides() {
        let (mut i, t, mut rs) = setup();
        rs.push_str("UW", "University of Washington", &t, &mut i).unwrap();
        let uw = i.get("uw").unwrap();
        let uni = i.get("university").unwrap();
        assert_eq!(rs.heads(uw).len(), 1);
        assert_eq!(rs.heads(uni).len(), 1);
        assert_eq!(rs.heads(uw)[0].1, Side::Lhs);
        assert_eq!(rs.heads(uni)[0].1, Side::Rhs);
    }

    #[test]
    fn other_side_flips() {
        let (mut i, t, mut rs) = setup();
        let id = rs.push_str("NY", "New York", &t, &mut i).unwrap();
        let ny = i.get("ny").unwrap();
        assert_eq!(rs.side(id, Side::Lhs), &[ny]);
        assert_eq!(rs.other_side(id, Side::Rhs), &[ny]);
    }
}
