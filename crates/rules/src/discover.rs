//! Synonym-rule discovery from the dictionary itself.
//!
//! The paper assumes rules are given (§2.2) and points at discovery systems
//! as complementary work (§5 "Gathering Synonym Rules"; pkduck [29] handles
//! abbreviations specifically). This module implements the most common —
//! and most mechanical — rule source: **abbreviation patterns inside the
//! entity table**. When one dictionary entry's token is the initialism of a
//! token sequence appearing in other entries ("UQ" ↔ "University of
//! Queensland"), the pair is emitted as a candidate rule for human review
//! or direct use.
//!
//! Detected patterns, all case-normalized:
//!
//! * **Initialisms** — `uq ⇔ university of queensland` (first letters,
//!   optionally skipping stopwords: `nyu ⇔ new york university`).
//! * **Prefix truncations** — `univ ⇔ university` (a token that is a
//!   ≥ 3-character prefix of a longer token).

use crate::rule::{RuleError, RuleSet};
use aeetes_text::{Dictionary, Interner, TokenId};
use std::collections::{HashMap, HashSet};

/// Options for [`discover_abbreviations`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Minimum expansion length in tokens for initialism rules (an
    /// initialism of a single token is just a prefix truncation).
    pub min_expansion_tokens: usize,
    /// Maximum expansion length in tokens.
    pub max_expansion_tokens: usize,
    /// Tokens ignored when matching initial letters ("of", "the", …) —
    /// both with and without them is attempted.
    pub stopwords: Vec<String>,
    /// Minimum abbreviation length in characters (1-char "abbreviations"
    /// are noise).
    pub min_abbrev_chars: usize,
    /// Also emit prefix-truncation rules (`univ ⇔ university`).
    pub prefix_truncations: bool,
    /// Minimum characters of a truncation, and it must be at least this
    /// many characters shorter than the full token.
    pub min_truncation_chars: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            min_expansion_tokens: 2,
            max_expansion_tokens: 6,
            stopwords: ["of", "the", "and", "for", "in", "at", "de"].map(str::to_string).to_vec(),
            min_abbrev_chars: 2,
            prefix_truncations: true,
            min_truncation_chars: 3,
        }
    }
}

/// A discovered candidate rule, with provenance for review.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredRule {
    /// The short side (abbreviation / truncation), one token.
    pub short: TokenId,
    /// The expansion token sequence.
    pub expansion: Vec<TokenId>,
    /// What kind of pattern produced it.
    pub kind: DiscoveryKind,
    /// In how many entities the expansion occurs.
    pub support: usize,
}

/// The pattern behind a discovered rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryKind {
    /// First letters of the expansion tokens.
    Initialism,
    /// First letters of the non-stopword expansion tokens.
    InitialismSkippingStopwords,
    /// Character prefix of a single longer token.
    PrefixTruncation,
}

/// Scans the dictionary for abbreviation-style rule candidates.
///
/// Returns rules sorted by descending support, then by the short token id
/// for determinism. Rules are *candidates*: pipe them through
/// [`add_discovered`] (or review them first) to use them.
pub fn discover_abbreviations(dict: &Dictionary, interner: &Interner, config: &DiscoveryConfig) -> Vec<DiscoveredRule> {
    let stop: HashSet<&str> = config.stopwords.iter().map(String::as_str).collect();

    // 1. Collect every candidate expansion window (token subsequences of
    //    entities) keyed by its initialism string, with support counts.
    type ExpansionInfo = (DiscoveryKind, HashSet<u32>);
    let mut by_initialism: HashMap<String, HashMap<Vec<TokenId>, ExpansionInfo>> = HashMap::new();
    for (eid, e) in dict.iter() {
        let n = e.tokens.len();
        for start in 0..n {
            for len in config.min_expansion_tokens..=config.max_expansion_tokens.min(n - start) {
                let window = &e.tokens[start..start + len];
                let full: String = window.iter().filter_map(|&t| interner.resolve(t).chars().next()).collect();
                let skipped: String = window
                    .iter()
                    .filter(|&&t| !stop.contains(interner.resolve(t)))
                    .filter_map(|&t| interner.resolve(t).chars().next())
                    .collect();
                for (key, kind) in [
                    (full.clone(), DiscoveryKind::Initialism),
                    (skipped.clone(), DiscoveryKind::InitialismSkippingStopwords),
                ] {
                    if key.chars().count() < config.min_abbrev_chars {
                        continue;
                    }
                    if kind == DiscoveryKind::InitialismSkippingStopwords && skipped == full {
                        continue; // no stopword was skipped: identical key
                    }
                    let slot = by_initialism.entry(key).or_default().entry(window.to_vec()).or_insert((kind, HashSet::new()));
                    slot.1.insert(eid.0);
                }
            }
        }
    }

    // 2. Dictionary tokens that *are* some expansion's initialism.
    let mut out = Vec::new();
    let mut seen_tokens: HashSet<TokenId> = HashSet::new();
    for (_, e) in dict.iter() {
        for &t in e.tokens {
            if !seen_tokens.insert(t) {
                continue;
            }
            let word = interner.resolve(t);
            if word.chars().count() < config.min_abbrev_chars {
                continue;
            }
            if let Some(expansions) = by_initialism.get(word) {
                for (expansion, (kind, support)) in expansions {
                    // The abbreviation must not be part of its own expansion.
                    if expansion.contains(&t) {
                        continue;
                    }
                    out.push(DiscoveredRule { short: t, expansion: expansion.clone(), kind: *kind, support: support.len() });
                }
            }
        }
    }

    // 3. Prefix truncations: token u is a prefix of token v (both in the
    //    dictionary vocabulary).
    if config.prefix_truncations {
        let vocab: Vec<TokenId> = seen_tokens.iter().copied().collect();
        let mut words: Vec<(&str, TokenId)> = vocab.iter().map(|&t| (interner.resolve(t), t)).collect();
        words.sort_unstable();
        // token frequency over entities, as support
        let mut tok_support: HashMap<TokenId, usize> = HashMap::new();
        for (_, e) in dict.iter() {
            let mut distinct: Vec<TokenId> = e.tokens.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            for t in distinct {
                *tok_support.entry(t).or_insert(0) += 1;
            }
        }
        for (i, &(w, t)) in words.iter().enumerate() {
            if w.chars().count() < config.min_truncation_chars {
                continue;
            }
            // All strictly longer words sharing the prefix follow w in sort order.
            for &(longer, lt) in words[i + 1..].iter().take_while(|(l, _)| l.starts_with(w)) {
                if longer.chars().count() >= w.chars().count() + config.min_truncation_chars {
                    out.push(DiscoveredRule {
                        short: t,
                        expansion: vec![lt],
                        kind: DiscoveryKind::PrefixTruncation,
                        support: tok_support.get(&lt).copied().unwrap_or(0),
                    });
                }
            }
        }
    }

    out.sort_by_key(|r| (std::cmp::Reverse(r.support), r.short, r.expansion.clone()));
    out
}

/// Adds discovered rules to a rule set (short side as `lhs`), returning how
/// many were accepted (duplicates of the rule-validity checks are skipped).
pub fn add_discovered(rules: &mut RuleSet, discovered: &[DiscoveredRule], weight: f64) -> usize {
    let mut added = 0;
    for r in discovered {
        match rules.push_tokens(vec![r.short], r.expansion.clone(), weight) {
            Ok(_) => added += 1,
            Err(RuleError::Trivial | RuleError::EmptySide | RuleError::BadWeight(_)) => {}
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::Tokenizer;

    fn setup(entries: &[&str]) -> (Dictionary, Interner) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        (dict, int)
    }

    #[test]
    fn finds_plain_initialism() {
        let (dict, int) = setup(&["UQ AU", "University of Queensland Australia"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        let uq = int.get("uq").unwrap();
        let hit = found
            .iter()
            .find(|r| r.short == uq && int.render(&r.expansion) == "university of queensland")
            .expect("uq ⇔ university of queensland discovered");
        assert_eq!(hit.kind, DiscoveryKind::InitialismSkippingStopwords);
        assert_eq!(hit.support, 1);
    }

    #[test]
    fn finds_stopword_skipping_initialism() {
        let (dict, int) = setup(&["NYU campus", "New York University"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        let nyu = int.get("nyu").unwrap();
        assert!(found.iter().any(|r| r.short == nyu && int.render(&r.expansion) == "new york university"), "{found:?}");
    }

    #[test]
    fn finds_prefix_truncation() {
        let (dict, int) = setup(&["Univ of Queensland", "University of Melbourne"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        let univ = int.get("univ").unwrap();
        let hit = found
            .iter()
            .find(|r| r.short == univ && int.render(&r.expansion) == "university")
            .expect("univ ⇔ university discovered");
        assert_eq!(hit.kind, DiscoveryKind::PrefixTruncation);
    }

    #[test]
    fn abbreviation_not_in_own_expansion_and_min_lengths() {
        let (dict, int) = setup(&["ab alpha beta", "x yankee zulu"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        // "ab" IS in the same entity as "alpha beta" but not inside the
        // expansion window — allowed. "x" is below min_abbrev_chars.
        let x = int.get("x").unwrap();
        assert!(found.iter().all(|r| r.short != x), "1-char abbreviations rejected");
        let ab = int.get("ab").unwrap();
        assert!(found.iter().any(|r| r.short == ab && int.render(&r.expansion) == "alpha beta"));
    }

    #[test]
    fn support_counts_entities() {
        let (dict, int) = setup(&["ML lab", "machine learning systems", "machine learning theory"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        let ml = int.get("ml").unwrap();
        let hit = found.iter().find(|r| r.short == ml && int.render(&r.expansion) == "machine learning").unwrap();
        assert_eq!(hit.support, 2);
        // Sorted descending by support.
        for w in found.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn discovered_rules_drive_extraction() {
        use crate::{DeriveConfig, DerivedDictionary};
        let (dict, int) = setup(&["UQ AU", "University of Queensland Australia"]);
        let found = discover_abbreviations(&dict, &int, &DiscoveryConfig::default());
        let mut rules = RuleSet::new();
        let added = add_discovered(&mut rules, &found, 1.0);
        assert!(added > 0);
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        // "UQ AU" must now have a variant containing "university of queensland".
        let uq_entity = aeetes_text::EntityId(0);
        let uni = int.get("university").unwrap();
        assert!(dd.variants(uq_entity).iter().any(|v| v.tokens.contains(&uni)), "discovered rule expands UQ");
    }

    #[test]
    fn empty_dictionary() {
        let (dict, int) = setup(&[]);
        assert!(discover_abbreviations(&dict, &int, &DiscoveryConfig::default()).is_empty());
    }
}
