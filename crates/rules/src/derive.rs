//! Off-line derived-dictionary generation (`E = ⋃_{e ∈ E0} D(e)`).

use crate::apply::{find_applications, select_non_conflict, select_non_conflict_exact, Application};
use crate::rule::{RuleId, RuleSet};
use aeetes_text::{Dictionary, EntityId, TokenId};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a derived entity in a [`DerivedDictionary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DerivedId(pub u32);

impl DerivedId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DerivedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One derived entity: an origin entity rewritten by a (possibly empty)
/// combination of non-conflict rules.
#[derive(Debug, Clone)]
pub struct DerivedEntity {
    /// The origin entity this variant was derived from.
    pub origin: EntityId,
    /// Rewritten token sequence, in surface order.
    pub tokens: Vec<TokenId>,
    /// Rules applied to produce this variant (empty for the origin itself).
    pub rules: Vec<RuleId>,
    /// Product of applied rule weights (`1.0` for unweighted rules).
    pub weight: f64,
}

/// Configuration for derived-dictionary generation.
#[derive(Debug, Clone)]
pub struct DeriveConfig {
    /// Cap on `|D(e)|` per entity. The combination count is `O(2^n)` in the
    /// number of non-conflict rule groups (paper §2.1); enumeration stops
    /// deterministically once the cap is reached and the truncation is
    /// recorded in [`DeriveStats::truncated_entities`].
    pub max_derived: usize,
    /// Use the exact maximum-weight non-conflict selection instead of the
    /// paper's greedy approximation. The span-conflict graph is an interval
    /// graph, so the optimum costs only `O(V log V)` per entity (weighted
    /// interval scheduling); the default stays greedy to mirror the paper.
    pub exact_selection: bool,
}

impl Default for DeriveConfig {
    fn default() -> Self {
        Self { max_derived: 256, exact_selection: false }
    }
}

/// Aggregate statistics of a derivation run (feeds the paper's Table 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeriveStats {
    /// Number of origin entities processed.
    pub origins: usize,
    /// Total derived entities generated (including each origin itself).
    pub derived: usize,
    /// Sum over entities of `|Ac(e)|` (all side occurrences found).
    pub applicable_total: usize,
    /// Sum over entities of `|A(e)|` (rules surviving non-conflict selection).
    pub selected_total: usize,
    /// Entities whose `D(e)` hit [`DeriveConfig::max_derived`].
    pub truncated_entities: usize,
    /// Derived variants dropped because their token sequence duplicated an
    /// earlier variant of the same origin.
    pub duplicates_dropped: usize,
}

impl DeriveStats {
    /// Average `|A(e)|` per entity — the Table 1 `avg |A(e)|` column.
    pub fn avg_selected(&self) -> f64 {
        if self.origins == 0 {
            0.0
        } else {
            self.selected_total as f64 / self.origins as f64
        }
    }

    /// Average `|Ac(e)|` per entity (before conflict resolution).
    pub fn avg_applicable(&self) -> f64 {
        if self.origins == 0 {
            0.0
        } else {
            self.applicable_total as f64 / self.origins as f64
        }
    }
}

/// The derived dictionary: every entity's variants, grouped contiguously by
/// origin so `D(e)` is a slice.
#[derive(Debug, Clone, Default)]
pub struct DerivedDictionary {
    derived: Vec<DerivedEntity>,
    /// `by_origin[e] = (first, last+1)` range of `e`'s variants in `derived`.
    by_origin: Vec<(u32, u32)>,
    stats: DeriveStats,
}

impl DerivedDictionary {
    /// Expands every entity of `dict` under `rules`.
    ///
    /// Variants are enumerated in a deterministic order: the unmodified
    /// origin first, then combinations in mixed-radix order over the
    /// span groups (leftmost span = least significant digit).
    pub fn build(dict: &Dictionary, rules: &RuleSet, config: &DeriveConfig) -> Self {
        Self::build_filtered(dict, rules, config, |_| true)
    }

    /// Expands only the entities selected by `keep`, preserving the *full*
    /// origin id space: origins outside the filter get empty variant ranges
    /// but remain addressable, so a shard's derived dictionary keeps global
    /// [`EntityId`]s. Derivation work (and [`DeriveStats::origins`]) counts
    /// only kept origins; `build` is `build_filtered(.., |_| true)`.
    pub fn build_filtered(dict: &Dictionary, rules: &RuleSet, config: &DeriveConfig, keep: impl Fn(EntityId) -> bool) -> Self {
        let mut out = Self::default();
        out.by_origin.reserve(dict.len());
        for (eid, ent) in dict.iter() {
            let first = out.derived.len() as u32;
            if keep(eid) {
                if !ent.tokens.is_empty() {
                    out.expand_entity(eid, &ent.tokens, rules, config);
                }
                out.stats.origins += 1;
            }
            out.by_origin.push((first, out.derived.len() as u32));
        }
        out.stats.derived = out.derived.len();
        out
    }

    fn expand_entity(&mut self, eid: EntityId, tokens: &[TokenId], rules: &RuleSet, config: &DeriveConfig) {
        self.stats.applicable_total += find_applications(tokens, rules).len();
        let groups = if config.exact_selection {
            select_non_conflict_exact(tokens, rules)
        } else {
            select_non_conflict(tokens, rules)
        };
        self.stats.selected_total += groups.iter().map(Vec::len).sum::<usize>();

        // Mixed-radix enumeration: digit g ranges over 0 (skip span) ..= |groups[g]|.
        let mut digits = vec![0usize; groups.len()];
        let mut seen: HashMap<Vec<TokenId>, ()> = HashMap::new();
        let mut produced = 0usize;
        loop {
            if produced >= config.max_derived {
                self.stats.truncated_entities += 1;
                break;
            }
            let chosen: Vec<&Application> = digits.iter().zip(&groups).filter_map(|(&d, g)| d.checked_sub(1).map(|i| &g[i])).collect();
            let (new_tokens, applied, weight) = rewrite(tokens, &chosen, rules);
            if seen.insert(new_tokens.clone(), ()).is_none() {
                self.derived.push(DerivedEntity { origin: eid, tokens: new_tokens, rules: applied, weight });
                produced += 1;
            } else {
                self.stats.duplicates_dropped += 1;
            }
            // Increment mixed-radix counter.
            let mut g = 0;
            loop {
                if g == groups.len() {
                    return; // all combinations enumerated
                }
                digits[g] += 1;
                if digits[g] <= groups[g].len() {
                    break;
                }
                digits[g] = 0;
                g += 1;
            }
        }
    }

    /// Reassembles a derived dictionary from its parts (deserialization).
    ///
    /// `derived` must be grouped contiguously by origin in ascending origin
    /// order — exactly the layout [`DerivedDictionary::build`] produces and
    /// [`DerivedDictionary::iter`] yields.
    ///
    /// # Errors
    /// Returns a message when an origin id is out of range or the grouping
    /// is not contiguous/ascending.
    pub fn from_parts(derived: Vec<DerivedEntity>, num_origins: usize, stats: DeriveStats) -> Result<Self, String> {
        let mut by_origin = vec![(0u32, 0u32); num_origins];
        let mut prev: Option<u32> = None;
        let mut start = 0u32;
        for (i, d) in derived.iter().enumerate() {
            if d.origin.idx() >= num_origins {
                return Err(format!("derived entity {i} references origin {:?} out of {num_origins}", d.origin));
            }
            match prev {
                Some(p) if p == d.origin.0 => {}
                Some(p) => {
                    if d.origin.0 < p {
                        return Err(format!("derived entities not grouped by ascending origin at index {i}"));
                    }
                    by_origin[p as usize] = (start, i as u32);
                    start = i as u32;
                    prev = Some(d.origin.0);
                }
                None => prev = Some(d.origin.0),
            }
        }
        if let Some(p) = prev {
            by_origin[p as usize] = (start, derived.len() as u32);
        }
        // Origins with no variants keep (0,0)? They must point at an empty
        // range at the right offset for slicing consistency; (0,0) is an
        // empty range, which is fine for `variants`/`variant_range`.
        let mut out = Self { derived, by_origin, stats };
        out.stats.origins = num_origins;
        out.stats.derived = out.derived.len();
        Ok(out)
    }

    /// The derived entity with id `id`.
    pub fn derived(&self, id: DerivedId) -> &DerivedEntity {
        &self.derived[id.idx()]
    }

    /// All variants of origin entity `e` (includes the unmodified origin).
    pub fn variants(&self, e: EntityId) -> &[DerivedEntity] {
        let (a, b) = self.by_origin[e.idx()];
        &self.derived[a as usize..b as usize]
    }

    /// The contiguous range of global [`DerivedId`]s holding `e`'s variants.
    pub fn variant_range(&self, e: EntityId) -> std::ops::Range<u32> {
        let (a, b) = self.by_origin[e.idx()];
        a..b
    }

    /// Total number of derived entities.
    pub fn len(&self) -> usize {
        self.derived.len()
    }

    /// Whether no derived entities exist.
    pub fn is_empty(&self) -> bool {
        self.derived.is_empty()
    }

    /// Number of origin entities.
    pub fn origins(&self) -> usize {
        self.by_origin.len()
    }

    /// Iterates over `(id, derived entity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DerivedId, &DerivedEntity)> {
        self.derived.iter().enumerate().map(|(i, d)| (DerivedId(i as u32), d))
    }

    /// Generation statistics.
    pub fn stats(&self) -> &DeriveStats {
        &self.stats
    }

    /// Minimum derived-entity token length (`|e|⊥`), or `None` when empty.
    pub fn min_len(&self) -> Option<usize> {
        self.derived.iter().map(|d| d.tokens.len()).min()
    }

    /// Maximum derived-entity token length (`|e|⊤`), or `None` when empty.
    pub fn max_len(&self) -> Option<usize> {
        self.derived.iter().map(|d| d.tokens.len()).max()
    }
}

/// Applies `chosen` (span-disjoint, any order) to `tokens`, returning the
/// rewritten sequence, the rule ids applied, and the weight product.
fn rewrite(tokens: &[TokenId], chosen: &[&Application], rules: &RuleSet) -> (Vec<TokenId>, Vec<RuleId>, f64) {
    let mut by_start: Vec<&Application> = chosen.to_vec();
    by_start.sort_by_key(|a| a.start);
    let mut out = Vec::with_capacity(tokens.len());
    let mut applied = Vec::with_capacity(by_start.len());
    let mut weight = 1.0;
    let mut pos = 0usize;
    for app in by_start {
        out.extend_from_slice(&tokens[pos..app.start as usize]);
        out.extend_from_slice(rules.other_side(app.rule, app.side));
        applied.push(app.rule);
        weight *= rules.rule(app.rule).weight;
        pos = app.end() as usize;
    }
    out.extend_from_slice(&tokens[pos..]);
    (out, applied, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::{Interner, Tokenizer};

    struct Ctx {
        int: Interner,
        tok: Tokenizer,
        dict: Dictionary,
        rules: RuleSet,
    }

    impl Ctx {
        fn new() -> Self {
            Self {
                int: Interner::new(),
                tok: Tokenizer::default(),
                dict: Dictionary::new(),
                rules: RuleSet::new(),
            }
        }
        fn entity(&mut self, s: &str) -> EntityId {
            self.dict.push(s, &self.tok, &mut self.int)
        }
        fn rule(&mut self, l: &str, r: &str) {
            self.rules.push_str(l, r, &self.tok, &mut self.int).unwrap();
        }
        fn build(&self) -> DerivedDictionary {
            DerivedDictionary::build(&self.dict, &self.rules, &DeriveConfig::default())
        }
        fn render(&self, d: &DerivedEntity) -> String {
            self.int.render(&d.tokens)
        }
    }

    /// Paper §2.1: e3 = "UQ AU" with rules UQ⇔University of Queensland and
    /// AU⇔Australia derives exactly the four listed variants.
    #[test]
    fn paper_uq_au_example() {
        let mut c = Ctx::new();
        let e = c.entity("UQ AU");
        c.rule("UQ", "University of Queensland");
        c.rule("AU", "Australia");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert_eq!(dd.len(), 4);
        assert!(got.contains(&"uq au".to_string()));
        assert!(got.contains(&"university of queensland au".to_string()));
        assert!(got.contains(&"uq australia".to_string()));
        assert!(got.contains(&"university of queensland australia".to_string()));
    }

    #[test]
    fn origin_variant_comes_first() {
        let mut c = Ctx::new();
        let e = c.entity("UW Madison");
        c.rule("UW", "University of Wisconsin");
        let dd = c.build();
        let v = dd.variants(e);
        assert_eq!(c.render(&v[0]), "uw madison");
        assert!(v[0].rules.is_empty());
        assert_eq!(v[0].weight, 1.0);
    }

    #[test]
    fn rhs_occurrence_rewrites_to_lhs() {
        let mut c = Ctx::new();
        let e = c.entity("University of Queensland");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert!(got.contains(&"uq".to_string()));
    }

    #[test]
    fn conflicting_rules_never_coapplied() {
        let mut c = Ctx::new();
        // "UW" could be Wisconsin or Washington (paper's r4/r5 conflict).
        let e = c.entity("UW Madison");
        c.rule("UW", "University of Wisconsin");
        c.rule("UW", "University of Washington");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert_eq!(got.len(), 3); // origin + two alternatives
        for d in dd.variants(e) {
            assert!(d.rules.len() <= 1);
        }
    }

    #[test]
    fn empty_entity_has_no_variants() {
        let mut c = Ctx::new();
        let e = c.entity("!!!");
        let dd = c.build();
        assert!(dd.variants(e).is_empty());
    }

    #[test]
    fn cap_truncates_deterministically() {
        let mut c = Ctx::new();
        // 8 independent spans, each with one rule → 2^8 = 256 combos.
        let e = c.entity("a b c d e f g h");
        for s in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            c.rule(s, &format!("{s}x"));
        }
        let dd1 = DerivedDictionary::build(&c.dict, &c.rules, &DeriveConfig { max_derived: 10, ..DeriveConfig::default() });
        let dd2 = DerivedDictionary::build(&c.dict, &c.rules, &DeriveConfig { max_derived: 10, ..DeriveConfig::default() });
        assert_eq!(dd1.variants(e).len(), 10);
        assert_eq!(dd1.stats().truncated_entities, 1);
        let t1: Vec<_> = dd1.variants(e).iter().map(|d| d.tokens.clone()).collect();
        let t2: Vec<_> = dd2.variants(e).iter().map(|d| d.tokens.clone()).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn no_cap_generates_full_product() {
        let mut c = Ctx::new();
        let e = c.entity("a b c d e f g h");
        for s in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            c.rule(s, &format!("{s}x"));
        }
        let dd = c.build();
        assert_eq!(dd.variants(e).len(), 256);
        assert_eq!(dd.stats().truncated_entities, 0);
    }

    #[test]
    fn duplicate_variants_are_dropped() {
        let mut c = Ctx::new();
        let e = c.entity("ny ny");
        c.rule("ny", "new york");
        let dd = c.build();
        // Spans (0,1) and (1,2): combos = 4, all distinct here. Now a rule
        // pair producing identical output: a⇔b and a⇔b reversed.
        let _ = e;
        let e2 = c.entity("a");
        c.rules.push_str("a", "b", &c.tok.clone(), &mut c.int).unwrap();
        c.rules.push_str("b", "a", &c.tok.clone(), &mut c.int).unwrap();
        let dd2 = c.build();
        // variants of "a": origin "a", rule1→"b", rule2 rhs "a" matched → lhs "b" (dup).
        let got: Vec<String> = dd2.variants(e2).iter().map(|d| c.render(d)).collect();
        assert_eq!(got.len(), 2, "duplicate 'b' dropped: {got:?}");
        assert!(dd2.stats().duplicates_dropped >= 1);
        drop(dd);
    }

    #[test]
    fn weights_multiply() {
        let mut c = Ctx::new();
        let e = c.entity("uq au");
        c.rules
            .push_weighted_str("uq", "university of queensland", 0.5, &c.tok.clone(), &mut c.int)
            .unwrap();
        c.rules.push_weighted_str("au", "australia", 0.8, &c.tok.clone(), &mut c.int).unwrap();
        let dd = c.build();
        let both = dd.variants(e).iter().find(|d| d.rules.len() == 2).expect("variant with both rules");
        assert!((both.weight - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stats_track_counts() {
        let mut c = Ctx::new();
        c.entity("UQ AU");
        c.entity("plain words");
        c.rule("UQ", "University of Queensland");
        c.rule("AU", "Australia");
        let dd = c.build();
        let s = dd.stats();
        assert_eq!(s.origins, 2);
        assert_eq!(s.selected_total, 2);
        assert_eq!(s.avg_selected(), 1.0);
        assert_eq!(dd.min_len(), Some(2));
        assert_eq!(dd.max_len(), Some(4));
    }

    #[test]
    fn variants_ranges_are_disjoint_and_ordered() {
        let mut c = Ctx::new();
        let a = c.entity("UQ x");
        let b = c.entity("UQ y");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        assert_eq!(dd.variants(a).len(), 2);
        assert_eq!(dd.variants(b).len(), 2);
        for d in dd.variants(a) {
            assert_eq!(d.origin, a);
        }
        for d in dd.variants(b) {
            assert_eq!(d.origin, b);
        }
        assert_eq!(dd.len(), 4);
        assert_eq!(dd.origins(), 2);
    }
}
