//! Off-line derived-dictionary generation (`E = ⋃_{e ∈ E0} D(e)`).

use crate::apply::{find_applications, select_non_conflict, select_non_conflict_exact, Application};
use crate::rule::{RuleId, RuleSet};
use aeetes_frozen::Arena;
use aeetes_text::{Dictionary, EntityId, TokenId};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a derived entity in a [`DerivedDictionary`].
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DerivedId(pub u32);

// SAFETY: repr(transparent) over u32 — fixed layout, any bit pattern valid.
unsafe impl aeetes_frozen::Pod for DerivedId {}

impl DerivedId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DerivedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One derived entity in owned form: an origin entity rewritten by a
/// (possibly empty) combination of non-conflict rules.
///
/// This is the *transfer* representation — deserialization and cross-shard
/// repartitioning pass `DerivedEntity` values around. Inside a
/// [`DerivedDictionary`] the same data lives in flat arenas and is read
/// through the borrowed [`DerivedRef`] view.
#[derive(Debug, Clone)]
pub struct DerivedEntity {
    /// The origin entity this variant was derived from.
    pub origin: EntityId,
    /// Rewritten token sequence, in surface order.
    pub tokens: Vec<TokenId>,
    /// Rules applied to produce this variant (empty for the origin itself).
    pub rules: Vec<RuleId>,
    /// Product of applied rule weights (`1.0` for unweighted rules).
    pub weight: f64,
}

/// Borrowed view of one derived entity inside a [`DerivedDictionary`].
#[derive(Debug, Clone, Copy)]
pub struct DerivedRef<'a> {
    /// The origin entity this variant was derived from.
    pub origin: EntityId,
    /// Rewritten token sequence, in surface order.
    pub tokens: &'a [TokenId],
    /// Rules applied to produce this variant (empty for the origin itself).
    pub rules: &'a [RuleId],
    /// Product of applied rule weights (`1.0` for unweighted rules).
    pub weight: f64,
}

impl DerivedRef<'_> {
    /// Copies the view into an owned [`DerivedEntity`].
    pub fn to_owned(&self) -> DerivedEntity {
        DerivedEntity {
            origin: self.origin,
            tokens: self.tokens.to_vec(),
            rules: self.rules.to_vec(),
            weight: self.weight,
        }
    }
}

/// The variants of one origin entity (borrowed view over the arenas).
#[derive(Clone, Copy)]
pub struct Variants<'a> {
    dd: &'a DerivedDictionary,
    start: u32,
    end: u32,
}

impl<'a> Variants<'a> {
    /// Number of variants.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the origin has no variants.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The `i`-th variant, if in range.
    pub fn get(&self, i: usize) -> Option<DerivedRef<'a>> {
        if i < self.len() {
            Some(self.dd.derived(DerivedId(self.start + i as u32)))
        } else {
            None
        }
    }

    /// Iterates the variants in derivation order.
    pub fn iter(&self) -> impl Iterator<Item = DerivedRef<'a>> + 'a {
        let dd = self.dd;
        (self.start..self.end).map(move |i| dd.derived(DerivedId(i)))
    }
}

impl<'a> IntoIterator for Variants<'a> {
    type Item = DerivedRef<'a>;
    type IntoIter = Box<dyn Iterator<Item = DerivedRef<'a>> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Debug for Variants<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Configuration for derived-dictionary generation.
#[derive(Debug, Clone)]
pub struct DeriveConfig {
    /// Cap on `|D(e)|` per entity. The combination count is `O(2^n)` in the
    /// number of non-conflict rule groups (paper §2.1); enumeration stops
    /// deterministically once the cap is reached and the truncation is
    /// recorded in [`DeriveStats::truncated_entities`].
    pub max_derived: usize,
    /// Use the exact maximum-weight non-conflict selection instead of the
    /// paper's greedy approximation. The span-conflict graph is an interval
    /// graph, so the optimum costs only `O(V log V)` per entity (weighted
    /// interval scheduling); the default stays greedy to mirror the paper.
    pub exact_selection: bool,
}

impl Default for DeriveConfig {
    fn default() -> Self {
        Self { max_derived: 256, exact_selection: false }
    }
}

/// Aggregate statistics of a derivation run (feeds the paper's Table 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeriveStats {
    /// Number of origin entities processed.
    pub origins: usize,
    /// Total derived entities generated (including each origin itself).
    pub derived: usize,
    /// Sum over entities of `|Ac(e)|` (all side occurrences found).
    pub applicable_total: usize,
    /// Sum over entities of `|A(e)|` (rules surviving non-conflict selection).
    pub selected_total: usize,
    /// Entities whose `D(e)` hit [`DeriveConfig::max_derived`].
    pub truncated_entities: usize,
    /// Derived variants dropped because their token sequence duplicated an
    /// earlier variant of the same origin.
    pub duplicates_dropped: usize,
}

impl DeriveStats {
    /// Average `|A(e)|` per entity — the Table 1 `avg |A(e)|` column.
    pub fn avg_selected(&self) -> f64 {
        if self.origins == 0 {
            0.0
        } else {
            self.selected_total as f64 / self.origins as f64
        }
    }

    /// Average `|Ac(e)|` per entity (before conflict resolution).
    pub fn avg_applicable(&self) -> f64 {
        if self.origins == 0 {
            0.0
        } else {
            self.applicable_total as f64 / self.origins as f64
        }
    }
}

/// The derived dictionary: every entity's variants, grouped contiguously by
/// origin so `D(e)` is a contiguous id range.
///
/// Storage is fully flat (PR 8): per-variant scalars plus prefix-offset
/// arrays into shared token/rule arenas, each held in an
/// [`Arena`] so a frozen artifact can back the whole structure zero-copy.
#[derive(Debug, Clone)]
pub struct DerivedDictionary {
    /// Variant → origin entity (`D` entries).
    origin: Arena<EntityId>,
    /// Variant → weight product (`D` entries).
    weight: Arena<f64>,
    /// All variants' tokens, back to back.
    tokens: Arena<TokenId>,
    /// `tok_off[i]..tok_off[i+1]` is variant `i`'s token range (`D+1`).
    tok_off: Arena<u32>,
    /// All variants' applied rules, back to back.
    rules: Arena<RuleId>,
    /// `rule_off[i]..rule_off[i+1]` is variant `i`'s rule range (`D+1`).
    rule_off: Arena<u32>,
    /// `by_origin[e]..by_origin[e+1]` is origin `e`'s variant id range
    /// (`origins + 1` entries, a prefix-sum over the origin id space).
    by_origin: Arena<u32>,
    stats: DeriveStats,
}

impl Default for DerivedDictionary {
    fn default() -> Self {
        Self {
            origin: Arena::new(),
            weight: Arena::new(),
            tokens: Arena::new(),
            tok_off: vec![0].into(),
            rules: Arena::new(),
            rule_off: vec![0].into(),
            by_origin: vec![0].into(),
            stats: DeriveStats::default(),
        }
    }
}

impl DerivedDictionary {
    /// Expands every entity of `dict` under `rules`.
    ///
    /// Variants are enumerated in a deterministic order: the unmodified
    /// origin first, then combinations in mixed-radix order over the
    /// span groups (leftmost span = least significant digit).
    pub fn build(dict: &Dictionary, rules: &RuleSet, config: &DeriveConfig) -> Self {
        Self::build_filtered(dict, rules, config, |_| true)
    }

    /// Expands only the entities selected by `keep`, preserving the *full*
    /// origin id space: origins outside the filter get empty variant ranges
    /// but remain addressable, so a shard's derived dictionary keeps global
    /// [`EntityId`]s. Derivation work (and [`DeriveStats::origins`]) counts
    /// only kept origins; `build` is `build_filtered(.., |_| true)`.
    pub fn build_filtered(dict: &Dictionary, rules: &RuleSet, config: &DeriveConfig, keep: impl Fn(EntityId) -> bool) -> Self {
        let mut out = Self::default();
        out.by_origin.as_mut_vec().reserve(dict.len());
        for (eid, ent) in dict.iter() {
            if keep(eid) {
                if !ent.tokens.is_empty() {
                    out.expand_entity(eid, ent.tokens, rules, config);
                }
                out.stats.origins += 1;
            }
            let end = out.origin.len() as u32;
            out.by_origin.as_mut_vec().push(end);
        }
        out.stats.derived = out.origin.len();
        out
    }

    /// Appends one variant's flat records (build/deserialize path only).
    fn push_variant(&mut self, origin: EntityId, tokens: &[TokenId], rules: &[RuleId], weight: f64) {
        self.origin.as_mut_vec().push(origin);
        self.weight.as_mut_vec().push(weight);
        self.tokens.as_mut_vec().extend_from_slice(tokens);
        let t_end = u32::try_from(self.tokens.len()).expect("derived token arena overflows u32 offsets");
        self.tok_off.as_mut_vec().push(t_end);
        self.rules.as_mut_vec().extend_from_slice(rules);
        let r_end = u32::try_from(self.rules.len()).expect("derived rule arena overflows u32 offsets");
        self.rule_off.as_mut_vec().push(r_end);
    }

    fn expand_entity(&mut self, eid: EntityId, tokens: &[TokenId], rules: &RuleSet, config: &DeriveConfig) {
        self.stats.applicable_total += find_applications(tokens, rules).len();
        let groups = if config.exact_selection {
            select_non_conflict_exact(tokens, rules)
        } else {
            select_non_conflict(tokens, rules)
        };
        self.stats.selected_total += groups.iter().map(Vec::len).sum::<usize>();

        // Mixed-radix enumeration: digit g ranges over 0 (skip span) ..= |groups[g]|.
        let mut digits = vec![0usize; groups.len()];
        let mut seen: HashMap<Vec<TokenId>, ()> = HashMap::new();
        let mut produced = 0usize;
        loop {
            if produced >= config.max_derived {
                self.stats.truncated_entities += 1;
                break;
            }
            let chosen: Vec<&Application> = digits.iter().zip(&groups).filter_map(|(&d, g)| d.checked_sub(1).map(|i| &g[i])).collect();
            let (new_tokens, applied, weight) = rewrite(tokens, &chosen, rules);
            if seen.insert(new_tokens.clone(), ()).is_none() {
                self.push_variant(eid, &new_tokens, &applied, weight);
                produced += 1;
            } else {
                self.stats.duplicates_dropped += 1;
            }
            // Increment mixed-radix counter.
            let mut g = 0;
            loop {
                if g == groups.len() {
                    return; // all combinations enumerated
                }
                digits[g] += 1;
                if digits[g] <= groups[g].len() {
                    break;
                }
                digits[g] = 0;
                g += 1;
            }
        }
    }

    /// Reassembles a derived dictionary from its parts (deserialization).
    ///
    /// `derived` must be grouped contiguously by origin in ascending origin
    /// order — exactly the layout [`DerivedDictionary::build`] produces and
    /// [`DerivedDictionary::iter`] yields.
    ///
    /// # Errors
    /// Returns a message when an origin id is out of range or the grouping
    /// is not contiguous/ascending.
    pub fn from_parts(derived: Vec<DerivedEntity>, num_origins: usize, stats: DeriveStats) -> Result<Self, String> {
        let mut out = Self { stats, ..Self::default() };
        let mut prev: Option<u32> = None;
        for (i, d) in derived.iter().enumerate() {
            if d.origin.idx() >= num_origins {
                return Err(format!("derived entity {i} references origin {:?} out of {num_origins}", d.origin));
            }
            if let Some(p) = prev {
                if d.origin.0 < p {
                    return Err(format!("derived entities not grouped by ascending origin at index {i}"));
                }
            }
            prev = Some(d.origin.0);
            out.push_variant(d.origin, &d.tokens, &d.rules, d.weight);
        }
        // Rebuild the origin prefix over the full id space.
        let by_origin = out.by_origin.as_mut_vec();
        by_origin.clear();
        by_origin.push(0);
        let mut i = 0usize;
        for e in 0..num_origins as u32 {
            while i < derived.len() && derived[i].origin.0 == e {
                i += 1;
            }
            by_origin.push(i as u32);
        }
        out.stats.origins = num_origins;
        out.stats.derived = derived.len();
        Ok(out)
    }

    /// Reassembles a derived dictionary directly from raw (possibly frozen)
    /// arenas, validating every structural invariant: array lengths agree,
    /// prefix-offset arrays are monotonic and end at their arena lengths,
    /// and each origin's variant range really holds variants of that origin.
    ///
    /// # Errors
    /// Returns a message describing the first violated invariant; a
    /// corrupted artifact yields a clean error here, never a panic later.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_arenas(
        origin: Arena<EntityId>,
        weight: Arena<f64>,
        tokens: Arena<TokenId>,
        tok_off: Arena<u32>,
        rules: Arena<RuleId>,
        rule_off: Arena<u32>,
        by_origin: Arena<u32>,
        stats: DeriveStats,
    ) -> Result<Self, String> {
        let d = origin.len();
        if weight.len() != d {
            return Err(format!("derived weight array holds {} entries, expected {d}", weight.len()));
        }
        check_prefix("derived token offsets", &tok_off, d, tokens.len())?;
        check_prefix("derived rule offsets", &rule_off, d, rules.len())?;
        let o = by_origin.len().checked_sub(1).ok_or("origin prefix array empty")?;
        check_prefix("origin prefix", &by_origin, o, d)?;
        // Hoist plain slices: an Arena access is a match plus a pointer
        // rebuild, which matters over every variant on the open path.
        let by_origin_s: &[u32] = &by_origin;
        let origin_s: &[EntityId] = &origin;
        for e in 0..o {
            let (lo, hi) = (by_origin_s[e] as usize, by_origin_s[e + 1] as usize);
            if let Some(j) = origin_s[lo..hi].iter().position(|org| org.idx() != e) {
                let i = lo + j;
                return Err(format!("variant {i} claims origin {:?} but sits in origin {e}'s range", origin_s[i]));
            }
        }
        let mut stats = stats;
        stats.origins = o;
        stats.derived = d;
        Ok(Self { origin, weight, tokens, tok_off, rules, rule_off, by_origin, stats })
    }

    /// The derived entity with id `id` (borrowed view).
    #[inline]
    pub fn derived(&self, id: DerivedId) -> DerivedRef<'_> {
        let i = id.idx();
        DerivedRef {
            origin: self.origin[i],
            tokens: &self.tokens[self.tok_off[i] as usize..self.tok_off[i + 1] as usize],
            rules: &self.rules[self.rule_off[i] as usize..self.rule_off[i + 1] as usize],
            weight: self.weight[i],
        }
    }

    /// The weight of variant `id` without materializing the full view
    /// (the verification hot path reads only this field).
    #[inline]
    pub fn weight_of(&self, id: DerivedId) -> f64 {
        self.weight[id.idx()]
    }

    /// All variants of origin entity `e` (includes the unmodified origin).
    pub fn variants(&self, e: EntityId) -> Variants<'_> {
        Variants { dd: self, start: self.by_origin[e.idx()], end: self.by_origin[e.idx() + 1] }
    }

    /// The contiguous range of global [`DerivedId`]s holding `e`'s variants.
    pub fn variant_range(&self, e: EntityId) -> std::ops::Range<u32> {
        self.by_origin[e.idx()]..self.by_origin[e.idx() + 1]
    }

    /// Total number of derived entities.
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// Whether no derived entities exist.
    pub fn is_empty(&self) -> bool {
        self.origin.is_empty()
    }

    /// Number of origin entities.
    pub fn origins(&self) -> usize {
        self.by_origin.len() - 1
    }

    /// Iterates over `(id, derived entity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DerivedId, DerivedRef<'_>)> {
        (0..self.origin.len() as u32).map(move |i| (DerivedId(i), self.derived(DerivedId(i))))
    }

    /// Generation statistics.
    pub fn stats(&self) -> &DeriveStats {
        &self.stats
    }

    /// Minimum derived-entity token length (`|e|⊥`), or `None` when empty.
    pub fn min_len(&self) -> Option<usize> {
        self.tok_off.windows(2).map(|w| (w[1] - w[0]) as usize).min()
    }

    /// Maximum derived-entity token length (`|e|⊤`), or `None` when empty.
    pub fn max_len(&self) -> Option<usize> {
        self.tok_off.windows(2).map(|w| (w[1] - w[0]) as usize).max()
    }

    /// Whether the storage borrows a frozen artifact (zero-copy) rather
    /// than owning heap arrays.
    pub fn is_frozen(&self) -> bool {
        self.origin.is_frozen()
    }

    /// Raw arena views, in [`DerivedDictionary::from_raw_arenas`] order —
    /// the v5 writer serializes exactly these seven arrays.
    #[allow(clippy::type_complexity)]
    pub fn raw_arenas(&self) -> (&[EntityId], &[f64], &[TokenId], &[u32], &[RuleId], &[u32], &[u32]) {
        (&self.origin, &self.weight, &self.tokens, &self.tok_off, &self.rules, &self.rule_off, &self.by_origin)
    }
}

/// Validates a prefix-offset array: `n + 1` entries, starts at 0, is
/// monotonic and ends exactly at `total`.
fn check_prefix(what: &str, off: &[u32], n: usize, total: usize) -> Result<(), String> {
    if off.len() != n + 1 {
        return Err(format!("{what} holds {} entries, expected {}", off.len(), n + 1));
    }
    if off[0] != 0 {
        return Err(format!("{what} does not start at 0"));
    }
    // Branchless fold so the monotonicity scan vectorizes (this runs on
    // the frozen-open critical path).
    if !off.windows(2).fold(true, |ok, w| ok & (w[0] <= w[1])) {
        return Err(format!("{what} not monotonic"));
    }
    if off[n] as usize != total {
        return Err(format!("{what} ends at {} but the arena holds {total}", off[n]));
    }
    Ok(())
}

/// Applies `chosen` (span-disjoint, any order) to `tokens`, returning the
/// rewritten sequence, the rule ids applied, and the weight product.
fn rewrite(tokens: &[TokenId], chosen: &[&Application], rules: &RuleSet) -> (Vec<TokenId>, Vec<RuleId>, f64) {
    let mut by_start: Vec<&Application> = chosen.to_vec();
    by_start.sort_by_key(|a| a.start);
    let mut out = Vec::with_capacity(tokens.len());
    let mut applied = Vec::with_capacity(by_start.len());
    let mut weight = 1.0;
    let mut pos = 0usize;
    for app in by_start {
        out.extend_from_slice(&tokens[pos..app.start as usize]);
        out.extend_from_slice(rules.other_side(app.rule, app.side));
        applied.push(app.rule);
        weight *= rules.rule(app.rule).weight;
        pos = app.end() as usize;
    }
    out.extend_from_slice(&tokens[pos..]);
    (out, applied, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::{Interner, Tokenizer};

    struct Ctx {
        int: Interner,
        tok: Tokenizer,
        dict: Dictionary,
        rules: RuleSet,
    }

    impl Ctx {
        fn new() -> Self {
            Self {
                int: Interner::new(),
                tok: Tokenizer::default(),
                dict: Dictionary::new(),
                rules: RuleSet::new(),
            }
        }
        fn entity(&mut self, s: &str) -> EntityId {
            self.dict.push(s, &self.tok, &mut self.int)
        }
        fn rule(&mut self, l: &str, r: &str) {
            self.rules.push_str(l, r, &self.tok, &mut self.int).unwrap();
        }
        fn build(&self) -> DerivedDictionary {
            DerivedDictionary::build(&self.dict, &self.rules, &DeriveConfig::default())
        }
        fn render(&self, d: DerivedRef<'_>) -> String {
            self.int.render(d.tokens)
        }
    }

    /// Paper §2.1: e3 = "UQ AU" with rules UQ⇔University of Queensland and
    /// AU⇔Australia derives exactly the four listed variants.
    #[test]
    fn paper_uq_au_example() {
        let mut c = Ctx::new();
        let e = c.entity("UQ AU");
        c.rule("UQ", "University of Queensland");
        c.rule("AU", "Australia");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert_eq!(dd.len(), 4);
        assert!(got.contains(&"uq au".to_string()));
        assert!(got.contains(&"university of queensland au".to_string()));
        assert!(got.contains(&"uq australia".to_string()));
        assert!(got.contains(&"university of queensland australia".to_string()));
    }

    #[test]
    fn origin_variant_comes_first() {
        let mut c = Ctx::new();
        let e = c.entity("UW Madison");
        c.rule("UW", "University of Wisconsin");
        let dd = c.build();
        let v = dd.variants(e);
        let first = v.get(0).unwrap();
        assert_eq!(c.render(first), "uw madison");
        assert!(first.rules.is_empty());
        assert_eq!(first.weight, 1.0);
    }

    #[test]
    fn rhs_occurrence_rewrites_to_lhs() {
        let mut c = Ctx::new();
        let e = c.entity("University of Queensland");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert!(got.contains(&"uq".to_string()));
    }

    #[test]
    fn conflicting_rules_never_coapplied() {
        let mut c = Ctx::new();
        // "UW" could be Wisconsin or Washington (paper's r4/r5 conflict).
        let e = c.entity("UW Madison");
        c.rule("UW", "University of Wisconsin");
        c.rule("UW", "University of Washington");
        let dd = c.build();
        let got: Vec<String> = dd.variants(e).iter().map(|d| c.render(d)).collect();
        assert_eq!(got.len(), 3); // origin + two alternatives
        for d in dd.variants(e) {
            assert!(d.rules.len() <= 1);
        }
    }

    #[test]
    fn empty_entity_has_no_variants() {
        let mut c = Ctx::new();
        let e = c.entity("!!!");
        let dd = c.build();
        assert!(dd.variants(e).is_empty());
    }

    #[test]
    fn cap_truncates_deterministically() {
        let mut c = Ctx::new();
        // 8 independent spans, each with one rule → 2^8 = 256 combos.
        let e = c.entity("a b c d e f g h");
        for s in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            c.rule(s, &format!("{s}x"));
        }
        let dd1 = DerivedDictionary::build(&c.dict, &c.rules, &DeriveConfig { max_derived: 10, ..DeriveConfig::default() });
        let dd2 = DerivedDictionary::build(&c.dict, &c.rules, &DeriveConfig { max_derived: 10, ..DeriveConfig::default() });
        assert_eq!(dd1.variants(e).len(), 10);
        assert_eq!(dd1.stats().truncated_entities, 1);
        let t1: Vec<Vec<TokenId>> = dd1.variants(e).iter().map(|d| d.tokens.to_vec()).collect();
        let t2: Vec<Vec<TokenId>> = dd2.variants(e).iter().map(|d| d.tokens.to_vec()).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn no_cap_generates_full_product() {
        let mut c = Ctx::new();
        let e = c.entity("a b c d e f g h");
        for s in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            c.rule(s, &format!("{s}x"));
        }
        let dd = c.build();
        assert_eq!(dd.variants(e).len(), 256);
        assert_eq!(dd.stats().truncated_entities, 0);
    }

    #[test]
    fn duplicate_variants_are_dropped() {
        let mut c = Ctx::new();
        let e = c.entity("ny ny");
        c.rule("ny", "new york");
        let dd = c.build();
        // Spans (0,1) and (1,2): combos = 4, all distinct here. Now a rule
        // pair producing identical output: a⇔b and a⇔b reversed.
        let _ = e;
        let e2 = c.entity("a");
        c.rules.push_str("a", "b", &c.tok.clone(), &mut c.int).unwrap();
        c.rules.push_str("b", "a", &c.tok.clone(), &mut c.int).unwrap();
        let dd2 = c.build();
        // variants of "a": origin "a", rule1→"b", rule2 rhs "a" matched → lhs "b" (dup).
        let got: Vec<String> = dd2.variants(e2).iter().map(|d| c.render(d)).collect();
        assert_eq!(got.len(), 2, "duplicate 'b' dropped: {got:?}");
        assert!(dd2.stats().duplicates_dropped >= 1);
        drop(dd);
    }

    #[test]
    fn weights_multiply() {
        let mut c = Ctx::new();
        let e = c.entity("uq au");
        c.rules
            .push_weighted_str("uq", "university of queensland", 0.5, &c.tok.clone(), &mut c.int)
            .unwrap();
        c.rules.push_weighted_str("au", "australia", 0.8, &c.tok.clone(), &mut c.int).unwrap();
        let dd = c.build();
        let both = dd.variants(e).iter().find(|d| d.rules.len() == 2).expect("variant with both rules");
        assert!((both.weight - 0.4).abs() < 1e-12);
        let id = DerivedId(dd.variant_range(e).start + dd.variants(e).iter().position(|d| d.rules.len() == 2).unwrap() as u32);
        assert_eq!(dd.weight_of(id), both.weight);
    }

    #[test]
    fn stats_track_counts() {
        let mut c = Ctx::new();
        c.entity("UQ AU");
        c.entity("plain words");
        c.rule("UQ", "University of Queensland");
        c.rule("AU", "Australia");
        let dd = c.build();
        let s = dd.stats();
        assert_eq!(s.origins, 2);
        assert_eq!(s.selected_total, 2);
        assert_eq!(s.avg_selected(), 1.0);
        assert_eq!(dd.min_len(), Some(2));
        assert_eq!(dd.max_len(), Some(4));
    }

    #[test]
    fn variants_ranges_are_disjoint_and_ordered() {
        let mut c = Ctx::new();
        let a = c.entity("UQ x");
        let b = c.entity("UQ y");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        assert_eq!(dd.variants(a).len(), 2);
        assert_eq!(dd.variants(b).len(), 2);
        for d in dd.variants(a) {
            assert_eq!(d.origin, a);
        }
        for d in dd.variants(b) {
            assert_eq!(d.origin, b);
        }
        assert_eq!(dd.len(), 4);
        assert_eq!(dd.origins(), 2);
    }

    #[test]
    fn from_parts_round_trips_build() {
        let mut c = Ctx::new();
        c.entity("UQ AU");
        c.entity("!!!"); // empty origin in the middle of the id space
        c.entity("plain words");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        let owned: Vec<DerivedEntity> = dd.iter().map(|(_, d)| d.to_owned()).collect();
        let re = DerivedDictionary::from_parts(owned, dd.origins(), dd.stats().clone()).unwrap();
        assert_eq!(re.len(), dd.len());
        assert_eq!(re.origins(), dd.origins());
        for (id, d) in dd.iter() {
            let r = re.derived(id);
            assert_eq!(r.origin, d.origin);
            assert_eq!(r.tokens, d.tokens);
            assert_eq!(r.rules, d.rules);
            assert_eq!(r.weight, d.weight);
        }
        for e in 0..dd.origins() as u32 {
            assert_eq!(re.variant_range(EntityId(e)), dd.variant_range(EntityId(e)), "origin {e}");
        }
    }

    #[test]
    fn raw_arena_round_trip_and_validation() {
        let mut c = Ctx::new();
        c.entity("UQ AU");
        c.entity("plain words");
        c.rule("UQ", "University of Queensland");
        let dd = c.build();
        let (origin, weight, tokens, tok_off, rules, rule_off, by_origin) = dd.raw_arenas();
        let rebuild = |f: &dyn Fn(&mut Vec<u32>)| {
            let mut t = tok_off.to_vec();
            f(&mut t);
            DerivedDictionary::from_raw_arenas(
                origin.to_vec().into(),
                weight.to_vec().into(),
                tokens.to_vec().into(),
                t.into(),
                rules.to_vec().into(),
                rule_off.to_vec().into(),
                by_origin.to_vec().into(),
                DeriveStats::default(),
            )
        };
        let ok = rebuild(&|_| {}).unwrap();
        assert_eq!(ok.len(), dd.len());
        assert_eq!(ok.variants(EntityId(0)).len(), dd.variants(EntityId(0)).len());
        assert!(rebuild(&|t| t[0] = 1).is_err(), "offset not starting at 0");
        assert!(rebuild(&|t| t.swap(1, 2)).is_err(), "non-monotonic offsets");
        assert!(rebuild(&|t| *t.last_mut().unwrap() += 1).is_err(), "offsets past arena");
        assert!(
            rebuild(&|t| {
                t.pop();
            })
            .is_err(),
            "wrong offset count"
        );
    }
}
