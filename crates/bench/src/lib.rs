//! Shared fixtures for the criterion benchmarks.
//!
//! Each bench regenerates one table/figure of the paper on small calibrated
//! corpora (benchmark-friendly scale; the `experiments` binary runs the
//! same measurements at arbitrary scale).

use aeetes_core::{Aeetes, AeetesConfig};
use aeetes_datagen::{generate, Dataset, DatasetProfile};

/// Scale used by the benches: small enough for criterion's repetitions.
pub const BENCH_SCALE: f64 = 0.05;

/// Deterministic seed shared by all benches.
pub const BENCH_SEED: u64 = 42;

/// The thresholds of the paper's sweeps (subset for bench runtime).
pub const TAUS: [f64; 3] = [0.7, 0.8, 0.9];

/// One generated dataset and its ready-built engine.
pub struct Fixture {
    /// The corpus.
    pub data: Dataset,
    /// Engine with synonym rules applied.
    pub engine: Aeetes,
}

/// Builds the fixture for one profile at bench scale.
pub fn fixture(profile: DatasetProfile) -> Fixture {
    let data = generate(&profile.scaled(BENCH_SCALE), BENCH_SEED);
    let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
    Fixture { data, engine }
}

/// All three paper profiles.
pub fn profiles() -> Vec<DatasetProfile> {
    DatasetProfile::all()
}
