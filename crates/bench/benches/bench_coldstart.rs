//! Cold-start bench: open-to-first-extraction latency of the v4 sharded
//! artifact (deserialize + rebuild every index) against the v5 frozen
//! artifact (mmap + checksum + adopt the prebuilt arenas), plus the
//! resident-set delta each load leaves behind.
//!
//! Besides the criterion group, medians are written to
//! `BENCH_coldstart.json` in the workspace target directory; CI gates on
//! `speedup >= 10`. Setting `AEETES_BENCH_QUICK=1` skips the criterion
//! groups and runs a reduced wall-clock pass (the CI smoke mode).

use aeetes_bench::BENCH_SEED;
use aeetes_core::{load_sharded, open_frozen, ExtractBackend};
use aeetes_core::{save_sharded, AeetesConfig};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_shard::ShardedEngine;
use aeetes_text::Document;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SHARDS: usize = 4;
const TAU: f64 = 0.8;

/// Cold start is about amortized index-rebuild cost, so this bench runs at
/// full pubmed scale (20k entities) rather than the criterion-friendly
/// `BENCH_SCALE` the hot-path benches share — at 5% scale fixed costs
/// dominate and the comparison measures nothing.
const COLDSTART_SCALE: f64 = 1.0;

/// Median wall-clock seconds of `runs` invocations of `f`. The return
/// value is dropped *outside* the timed window: the metric is
/// open-to-first-extraction latency, and teardown (munmap / freeing the
/// rebuilt structures) is not part of answering the first request.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let alive = black_box(f());
            let s = start.elapsed().as_secs_f64();
            drop(alive);
            s
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

/// Resident set in KiB from `/proc/self/statm` (0 where unavailable,
/// e.g. non-Linux). Pages are assumed 4 KiB — diagnostic, not gated.
fn resident_kb() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1).and_then(|f| f.parse::<u64>().ok()))
        .map(|pages| pages * 4)
        .unwrap_or(0)
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aeetes-coldstart-{tag}-{}.aeet", std::process::id()))
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("AEETES_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let data = generate(&DatasetProfile::pubmed_like().scaled(COLDSTART_SCALE), BENCH_SEED);
    let engine = ShardedEngine::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default(), SHARDS);

    let v4_path = tmp("v4");
    let v5_path = tmp("v5");
    let v4_bytes = save_sharded(&engine.to_parts());
    let v5_bytes = engine.freeze();
    std::fs::write(&v4_path, &v4_bytes).expect("write v4 artifact");
    std::fs::write(&v5_path, &v5_bytes).expect("write v5 artifact");

    // A short document drives the first extraction (a first request is a
    // query, not a corpus scan); parsing happens against the loaded
    // engine's interner inside the measured window — exactly what a cold
    // process does before answering its first request.
    let first_doc = &data.documents[0].tokens()[..64.min(data.documents[0].tokens().len())];
    let doc_text = data.interner.render(first_doc);

    let open_v4 = |path: &PathBuf| {
        let bytes = std::fs::read(path).expect("read v4");
        let parts = load_sharded(&bytes).expect("parse v4");
        ShardedEngine::from_parts(parts, None).expect("rebuild v4")
    };
    let open_v5 = |path: &PathBuf| {
        let parts = open_frozen(path).expect("open v5");
        ShardedEngine::from_frozen(parts, None).expect("adopt v5")
    };
    let tokenizer = data.tokenizer.clone();
    let first_extract = move |engine: &ShardedEngine| {
        let generation = engine.snapshot();
        let mut interner = generation.interner().clone();
        let doc = Document::parse(&doc_text, &tokenizer, &mut interner);
        generation.extract_all(&doc, TAU)
    };

    // Resident-set deltas, best effort: v5 first so the allocator's
    // high-water mark from the v4 rebuild can't mask the mmap savings.
    let rss0 = resident_kb();
    let mapped = open_v5(&v5_path);
    black_box(first_extract(&mapped));
    let v5_rss_delta_kb = resident_kb().saturating_sub(rss0);
    drop(mapped);
    let rss1 = resident_kb();
    let loaded = open_v4(&v4_path);
    black_box(first_extract(&loaded));
    let v4_rss_delta_kb = resident_kb().saturating_sub(rss1);
    drop(loaded);

    if !quick {
        let mut g = c.benchmark_group("coldstart");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
        g.bench_function("v4_load_to_first_extract", |b| {
            b.iter(|| {
                let e = open_v4(&v4_path);
                black_box(first_extract(&e))
            });
        });
        g.bench_function("v5_mmap_to_first_extract", |b| {
            b.iter(|| {
                let e = open_v5(&v5_path);
                black_box(first_extract(&e))
            });
        });
        g.finish();
    }

    let runs = if quick { 5 } else { 9 };
    let v4_open_s = time_median(runs, || {
        let e = open_v4(&v4_path);
        let m = black_box(first_extract(&e));
        (e, m)
    });
    let v5_open_s = time_median(runs, || {
        let e = open_v5(&v5_path);
        let m = black_box(first_extract(&e));
        (e, m)
    });
    let speedup = v4_open_s / v5_open_s;

    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"coldstart\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"shards\": {},\n",
            "  \"tau\": {},\n",
            "  \"v4_artifact_bytes\": {},\n",
            "  \"v5_artifact_bytes\": {},\n",
            "  \"v4_open_to_first_extract_s\": {:.6},\n",
            "  \"v5_open_to_first_extract_s\": {:.6},\n",
            "  \"speedup\": {:.2},\n",
            "  \"v4_rss_delta_kb\": {},\n",
            "  \"v5_rss_delta_kb\": {}\n",
            "}}\n"
        ),
        data.name,
        SHARDS,
        TAU,
        v4_bytes.len(),
        v5_bytes.len(),
        v4_open_s,
        v5_open_s,
        speedup,
        v4_rss_delta_kb,
        v5_rss_delta_kb,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_coldstart.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    eprintln!("coldstart: v4 {v4_open_s:.4}s, v5 {v5_open_s:.4}s ({speedup:.1}x)");

    std::fs::remove_file(&v4_path).ok();
    std::fs::remove_file(&v5_path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
