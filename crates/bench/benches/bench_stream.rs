//! Streaming extraction and bound-pruned top-k bench.
//!
//! Two claims are measured — and their prerequisites *asserted*, so a
//! regression fails the bench run instead of silently shifting numbers:
//!
//! - **Top-k pruning**: [`extract_top_k_with`] must return exactly the
//!   naive "extract everything, sort, truncate" result while examining
//!   strictly fewer candidates at small `k` (the τ ratchet tightening the
//!   window and prefix filters is the whole point). The bench compares
//!   wall-clock and candidate counters of both sides.
//! - **Streaming**: a [`StreamExtractor`] fed arbitrary-size chunks must
//!   emit exactly the whole-document matches; the bench then compares
//!   streamed throughput at small and large chunk sizes against one-shot
//!   extraction to price the carry/re-extraction overhead.
//!
//! Wall-clock medians, candidate counters, and the pruned/full ratio are
//! written to `BENCH_stream.json` in the workspace target directory.
//! `AEETES_BENCH_QUICK=1` skips the criterion groups and runs a reduced
//! wall-clock pass (the CI smoke mode).

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{extract_top_k_with, select_top_k, Aeetes, AeetesConfig, ExtractStats, Strategy};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_sim::Metric;
use aeetes_stream::StreamExtractor;
use aeetes_text::{Document, Interner, Tokenizer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

/// Streams every text through `stream` in `chunk`-byte pieces; returns the
/// total number of matches (feed-emitted plus final flush).
fn run_streamed(
    stream: &mut StreamExtractor,
    engine: &Aeetes,
    tokenizer: &Tokenizer,
    interner: &mut Interner,
    texts: &[String],
    chunk: usize,
) -> usize {
    let mut n = 0usize;
    for text in texts {
        for piece in text.as_bytes().chunks(chunk) {
            n += stream.feed(engine, tokenizer, interner, piece).len();
        }
        n += stream.finish(engine, tokenizer, interner).len();
    }
    n
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("AEETES_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let data = generate(&DatasetProfile::pubmed_like().scaled(BENCH_SCALE), BENCH_SEED);
    let mut interner = data.interner.clone();
    let tokenizer = Tokenizer::default();
    let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &interner, AeetesConfig::default());
    let tau = 0.6;
    let metric = Metric::Jaccard;
    let k = 5usize;

    let docs: Vec<&Document> = data.documents.iter().take(24).collect();
    // The streaming side needs raw text: rebuild each document's prose from
    // its tokens (datagen documents are token-level).
    let texts: Vec<String> = docs
        .iter()
        .map(|d| d.tokens().iter().map(|&t| interner.resolve(t)).collect::<Vec<_>>().join(" "))
        .collect();
    let total_bytes: usize = texts.iter().map(String::len).sum();

    // Gate 1 — top-k: bit-identical to the naive oracle, strictly fewer
    // candidates in aggregate at small k.
    let mut full_stats = ExtractStats::default();
    let mut pruned_stats = ExtractStats::default();
    for doc in &docs {
        let (mut all, fs) = engine.extract_with(doc, tau, Strategy::Simple);
        full_stats += fs;
        let (top, ps) = extract_top_k_with(&engine, doc, k, tau, metric);
        pruned_stats += ps;
        select_top_k(&mut all, k);
        assert_eq!(top, all, "pruned top-k diverged from the naive sort-and-truncate oracle");
    }
    assert!(
        pruned_stats.candidates < full_stats.candidates,
        "bound-pruned top-k (k={k}) must examine fewer candidates than full extraction: pruned {} vs full {}",
        pruned_stats.candidates,
        full_stats.candidates
    );

    // Gate 2 — streaming: chunked extraction equals whole-document
    // extraction, match for match.
    for text in &texts {
        let doc = Document::parse(text, &tokenizer, &mut interner);
        let whole = engine.extract(&doc, tau);
        let mut stream = StreamExtractor::new(&engine, tau);
        let mut got = Vec::new();
        for piece in text.as_bytes().chunks(64) {
            got.extend(stream.feed(&engine, &tokenizer, &mut interner, piece).iter().copied());
        }
        got.extend(stream.finish(&engine, &tokenizer, &mut interner).iter().copied());
        assert_eq!(got.len(), whole.len(), "streamed match count diverged from whole-document extraction");
        for (s, w) in got.iter().zip(&whole) {
            assert_eq!(
                (s.start as usize, s.len as usize, s.entity),
                (w.span.start as usize, w.span.len as usize, w.entity),
                "streamed match diverged from whole-document extraction"
            );
        }
    }

    if !quick {
        let mut g = c.benchmark_group("stream");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_millis(1200));
        g.bench_function("extract/whole_document", |b| {
            b.iter(|| {
                let mut n = 0usize;
                for text in &texts {
                    let doc = Document::parse(text, &tokenizer, &mut interner);
                    n += engine.extract(&doc, tau).len();
                }
                black_box(n)
            });
        });
        for (name, chunk) in [("streamed_256b", 256usize), ("streamed_4k", 4096)] {
            let mut stream = StreamExtractor::new(&engine, tau);
            g.bench_function(format!("extract/{name}"), |b| {
                b.iter(|| black_box(run_streamed(&mut stream, &engine, &tokenizer, &mut interner, &texts, chunk)));
            });
        }
        g.finish();

        let mut g = c.benchmark_group("topk");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_millis(1200));
        g.bench_function("topk/naive_full_truncate", |b| {
            b.iter(|| {
                let mut n = 0usize;
                for doc in &docs {
                    let mut all = engine.extract(doc, tau);
                    select_top_k(&mut all, k);
                    n += all.len();
                }
                black_box(n)
            });
        });
        g.bench_function("topk/bound_pruned", |b| {
            b.iter(|| {
                let mut n = 0usize;
                for doc in &docs {
                    n += extract_top_k_with(&engine, doc, k, tau, metric).0.len();
                }
                black_box(n)
            });
        });
        g.finish();
    }

    // Wall-clock summary for BENCH_stream.json, sampled round-robin so
    // machine-state drift hits every variant equally.
    let runs = if quick { 9 } else { 21 };
    let mut stream_small = StreamExtractor::new(&engine, tau);
    let mut stream_large = StreamExtractor::new(&engine, tau);
    let mut samples: [Vec<f64>; 5] = Default::default();
    for _ in 0..runs {
        samples[0].push(time_median(1, || {
            let mut n = 0usize;
            for text in &texts {
                let doc = Document::parse(text, &tokenizer, &mut interner);
                n += engine.extract(&doc, tau).len();
            }
            n
        }));
        samples[1].push(time_median(1, || run_streamed(&mut stream_small, &engine, &tokenizer, &mut interner, &texts, 256)));
        samples[2].push(time_median(1, || run_streamed(&mut stream_large, &engine, &tokenizer, &mut interner, &texts, 4096)));
        samples[3].push(time_median(1, || {
            let mut n = 0usize;
            for doc in &docs {
                let mut all = engine.extract(doc, tau);
                select_top_k(&mut all, k);
                n += all.len();
            }
            n
        }));
        samples[4].push(time_median(1, || {
            let mut n = 0usize;
            for doc in &docs {
                n += extract_top_k_with(&engine, doc, k, tau, metric).0.len();
            }
            n
        }));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        v[v.len() / 2]
    };
    let whole_s = median(&mut samples[0]);
    let stream_256_s = median(&mut samples[1]);
    let stream_4k_s = median(&mut samples[2]);
    let naive_s = median(&mut samples[3]);
    let pruned_s = median(&mut samples[4]);
    let mbps = |secs: f64| total_bytes as f64 / secs / (1024.0 * 1024.0);
    let candidate_ratio = pruned_stats.candidates as f64 / full_stats.candidates as f64;
    eprintln!(
        "top-k k={k}: pruned examines {} of {} candidates ({:.1}%), {:.2}x wall-clock vs naive",
        pruned_stats.candidates,
        full_stats.candidates,
        100.0 * candidate_ratio,
        naive_s / pruned_s
    );
    eprintln!(
        "streaming: whole {:.1} MB/s, 256 B chunks {:.1} MB/s, 4 KiB chunks {:.1} MB/s",
        mbps(whole_s),
        mbps(stream_256_s),
        mbps(stream_4k_s)
    );

    let rows = [
        format!("{{\"variant\": \"whole_document\", \"batch_s\": {whole_s:.6}, \"mb_per_s\": {:.2}}}", mbps(whole_s)),
        format!(
            "{{\"variant\": \"streamed_256b\", \"batch_s\": {stream_256_s:.6}, \"mb_per_s\": {:.2}, \"relative_to_whole\": {:.2}}}",
            mbps(stream_256_s),
            whole_s / stream_256_s
        ),
        format!(
            "{{\"variant\": \"streamed_4k\", \"batch_s\": {stream_4k_s:.6}, \"mb_per_s\": {:.2}, \"relative_to_whole\": {:.2}}}",
            mbps(stream_4k_s),
            whole_s / stream_4k_s
        ),
        format!("{{\"variant\": \"topk_naive\", \"batch_s\": {naive_s:.6}, \"candidates\": {}}}", full_stats.candidates),
        format!(
            "{{\"variant\": \"topk_pruned\", \"batch_s\": {pruned_s:.6}, \"candidates\": {}, \"candidate_ratio\": {candidate_ratio:.4}, \"speedup_vs_naive\": {:.2}}}",
            pruned_stats.candidates,
            naive_s / pruned_s
        ),
    ];
    let report = format!(
        "{{\n  \"bench\": \"stream\",\n  \"dataset\": \"{}\",\n  \"tau\": {tau},\n  \"k\": {k},\n  \"docs\": {},\n  \"bytes\": {total_bytes},\n  \"quick\": {quick},\n  \"candidate_ratio\": {candidate_ratio:.4},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        data.name,
        docs.len(),
        rows.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_stream.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
