//! Ablation bench: off-line build time and on-line extraction time as the
//! derived-dictionary cap grows (usjob profile — the cap-sensitive one).

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{Aeetes, AeetesConfig};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_rules::DeriveConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_derive_cap");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let data = generate(&DatasetProfile::usjob_like().scaled(BENCH_SCALE), BENCH_SEED);
    for cap in [16usize, 64, 256] {
        let cfg = AeetesConfig {
            derive: DeriveConfig { max_derived: cap, ..DeriveConfig::default() },
            ..AeetesConfig::default()
        };
        g.bench_function(format!("build/cap{cap}"), |b| {
            b.iter(|| black_box(Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, cfg.clone())));
        });
        let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, cfg);
        let docs = &data.documents[..data.documents.len().min(3)];
        g.bench_function(format!("extract/cap{cap}"), |b| {
            b.iter(|| {
                for doc in docs {
                    black_box(engine.extract(doc, 0.8));
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
