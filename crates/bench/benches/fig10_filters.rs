//! Figure 10 bench: extraction time per document for the four filtering
//! strategies (Simple / Skip / Dynamic / Lazy).

use aeetes_bench::{fixture, profiles, TAUS};
use aeetes_core::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in profiles() {
        let fx = fixture(profile);
        let docs = &fx.data.documents[..fx.data.documents.len().min(3)];
        for tau in TAUS {
            for strategy in Strategy::ALL {
                g.bench_function(format!("{}/{}/tau{tau}", fx.data.name, strategy.name()), |b| {
                    b.iter(|| {
                        for doc in docs {
                            black_box(fx.engine.extract_with(doc, tau, strategy));
                        }
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
