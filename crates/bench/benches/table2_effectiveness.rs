//! Table 2 bench: cost of the three similarity measures over the gold
//! pairs — Jaccard, Fuzzy Jaccard and JaccAR verification (the
//! effectiveness numbers themselves are produced by `experiments table2`).

use aeetes_bench::{fixture, profiles};
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use aeetes_sim::{fuzzy_jaccard, jaccard, sorted_set, JaccArVerifier};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in profiles() {
        let fx = fixture(profile);
        let dd = DerivedDictionary::build(&fx.data.dictionary, &fx.data.rules, &DeriveConfig::default());
        let verifier = JaccArVerifier::new(&dd);
        // Gold pairs as (entity set, substring set, entity strings, sub strings).
        let pairs: Vec<_> = fx
            .data
            .gold
            .iter()
            .take(100)
            .map(|gold| {
                let sub = fx.data.documents[gold.doc].slice(gold.span);
                (gold.entity, sorted_set(fx.data.dictionary.entity(gold.entity)), sorted_set(sub))
            })
            .collect();
        let str_pairs: Vec<(Vec<&str>, Vec<&str>)> = fx
            .data
            .gold
            .iter()
            .take(100)
            .map(|gold| {
                let sub = fx.data.documents[gold.doc].slice(gold.span);
                (
                    fx.data.dictionary.entity(gold.entity).iter().map(|&t| fx.data.interner.resolve(t)).collect(),
                    sub.iter().map(|&t| fx.data.interner.resolve(t)).collect(),
                )
            })
            .collect();

        g.bench_function(format!("jaccard/{}", fx.data.name), |b| {
            b.iter(|| {
                for (_, e, s) in &pairs {
                    black_box(jaccard(e, s));
                }
            });
        });
        g.bench_function(format!("fuzzy_jaccard/{}", fx.data.name), |b| {
            b.iter(|| {
                for (e, s) in &str_pairs {
                    black_box(fuzzy_jaccard(e, s, 0.8));
                }
            });
        });
        g.bench_function(format!("jaccar/{}", fx.data.name), |b| {
            b.iter(|| {
                for (e, _, s) in &pairs {
                    black_box(verifier.verify(*e, s, 0.7));
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
