//! Figure 12 bench: extraction time while the dictionary grows
//! (entity-count sweep per dataset).

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{Aeetes, AeetesConfig};
use aeetes_datagen::{generate, DatasetProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for base in DatasetProfile::all() {
        let base = base.scaled(BENCH_SCALE);
        for step in [0.25, 0.5, 1.0] {
            let entities = ((base.entities as f64 * step).round() as usize).max(1);
            let profile = base.clone().with_entities(entities);
            let data = generate(&profile, BENCH_SEED);
            let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
            let docs = &data.documents[..data.documents.len().min(3)];
            for tau in [0.7, 0.9] {
                g.bench_function(format!("{}/entities{entities}/tau{tau}", data.name), |b| {
                    b.iter(|| {
                        for doc in docs {
                            black_box(engine.extract(doc, tau));
                        }
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
