//! Shard scaling bench: build time and extraction throughput of the
//! sharded engine at 1/2/4/8 shards against the monolithic baseline.
//!
//! Besides the criterion groups, a summary of wall-clock measurements is
//! written to `BENCH_shard.json` in the workspace target directory so CI
//! (and the experiments pipeline) can track scaling without parsing
//! criterion's own output format.

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{Aeetes, AeetesConfig, ExtractBackend};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_shard::ShardedEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetProfile::pubmed_like().scaled(BENCH_SCALE), BENCH_SEED);
    let docs = &data.documents[..data.documents.len().min(8)];
    let tau = 0.8;
    let config = AeetesConfig::default();

    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));

    let mono = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, config.clone());
    g.bench_function("extract/mono", |b| {
        b.iter(|| {
            for doc in docs {
                black_box(mono.extract(doc, tau));
            }
        });
    });

    let mut rows = Vec::new();
    for n in SHARD_COUNTS {
        g.bench_function(format!("build/shards{n}"), |b| {
            b.iter(|| black_box(ShardedEngine::build(data.dictionary.clone(), &data.rules, &data.interner, config.clone(), n)));
        });
        let engine = ShardedEngine::build(data.dictionary.clone(), &data.rules, &data.interner, config.clone(), n);
        let generation = engine.snapshot();
        g.bench_function(format!("extract/shards{n}"), |b| {
            b.iter(|| {
                for doc in docs {
                    black_box(generation.extract_all(doc, tau));
                }
            });
        });

        // Wall-clock summary rows for BENCH_shard.json.
        let build_s = time_median(3, || ShardedEngine::build(data.dictionary.clone(), &data.rules, &data.interner, config.clone(), n));
        let extract_s = time_median(5, || {
            for doc in docs {
                black_box(generation.extract_all(doc, tau));
            }
        });
        rows.push(format!(
            concat!("{{\"shards\": {}, \"build_s\": {:.6}, \"extract_batch_s\": {:.6}, ", "\"docs_per_s\": {:.2}, \"variants\": {}}}"),
            n,
            build_s,
            extract_s,
            docs.len() as f64 / extract_s,
            generation.variants(),
        ));
    }
    g.finish();

    let report = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"dataset\": \"{}\",\n  \"tau\": {tau},\n  \"docs\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        data.name,
        docs.len(),
        rows.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_shard.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
