//! Batch scaling bench over the persistent pool: sustained document
//! throughput of `extract_batch_into` at 1/2/4/8 workers against the same
//! engine, plus the sharded engine's routed extraction — everything over
//! engines and pools built **once**, the way a long-running server holds
//! them. The pre-pool version of this bench spawned a `thread::scope` per
//! call and measured *negative* scaling (0.13x at 8 threads); the numbers
//! here are what the executor rework is gated on.
//!
//! Besides the criterion groups, a wall-clock summary is written to
//! `BENCH_shard.json` in the workspace target directory: one row per
//! worker count with sustained batch docs/s and amortized per-document
//! latency, the sequential per-document p50 as the latency baseline, and
//! the 8-vs-1 scaling ratio.
//!
//! `AEETES_BENCH_QUICK=1` skips the criterion groups and runs a reduced
//! wall-clock pass (the CI smoke mode). `AEETES_BENCH_GATE=1` additionally
//! fails the run when the scaling ratio lands under a floor scaled to the
//! runner: 4.0x on 8+ cores, `clamp(0.5 * cores, 0.7, 4.0)` below that.
//! A small-core runner cannot prove speedup — running 8 workers on one
//! core *costs* a little — so its floor only proves the executor does not
//! collapse the way the per-call `thread::scope` version did (0.13x).

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{Aeetes, AeetesConfig, BatchOptions, ExtractBackend, ExtractLimits, ExtractScratch};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_pool::{extract_batch_into, BatchBuf, Pool};
use aeetes_shard::ShardedEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("AEETES_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let gate = std::env::var("AEETES_BENCH_GATE").is_ok_and(|v| !v.is_empty() && v != "0");
    let data = generate(&DatasetProfile::pubmed_like().scaled(BENCH_SCALE), BENCH_SEED);
    let doc_cap = if quick { 24 } else { 64 };
    let docs = &data.documents[..data.documents.len().min(doc_cap)];
    let rounds = if quick { 3 } else { 7 };
    let tau = 0.8;
    let config = AeetesConfig::default();
    let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, config.clone());

    // Sequential per-document latency baseline: one persistent scratch,
    // p50 over the document mix after a warm pass.
    let mut scratch = ExtractScratch::new();
    for doc in docs {
        black_box(engine.extract_scratched(doc, tau, &ExtractLimits::UNLIMITED, None, &mut scratch));
    }
    let mut per_doc: Vec<f64> = docs
        .iter()
        .map(|doc| time_median(3, || engine.extract_scratched(doc, tau, &ExtractLimits::UNLIMITED, None, &mut scratch).matches.len()))
        .collect();
    per_doc.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    let per_doc_p50_us = per_doc[per_doc.len() / 2] * 1e6;

    if !quick {
        let mut g = c.benchmark_group("shard_scaling");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_millis(1200));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            let opts = BatchOptions { threads: t, ..BatchOptions::default() };
            let mut buf = BatchBuf::new();
            pool.on_each_worker(|_, s| {
                for doc in docs {
                    black_box(engine.extract_scratched(doc, tau, &ExtractLimits::UNLIMITED, None, s));
                }
            });
            g.bench_function(format!("batch/threads{t}"), |b| {
                b.iter(|| {
                    extract_batch_into(&pool, &engine, docs, tau, &opts, &mut buf);
                    black_box(buf.slots().len())
                });
            });
        }
        g.finish();
    }

    // Wall-clock rows: sustained batch throughput per worker count over
    // persistent pools, buffers and scratches (warm-up excluded).
    let mut rows = Vec::new();
    let mut docs_per_s_by_threads = Vec::new();
    for t in THREAD_COUNTS {
        let pool = Pool::new(t);
        let opts = BatchOptions { threads: t, ..BatchOptions::default() };
        let mut buf = BatchBuf::new();
        pool.on_each_worker(|_, s| {
            for doc in docs {
                black_box(engine.extract_scratched(doc, tau, &ExtractLimits::UNLIMITED, None, s));
            }
        });
        for _ in 0..2 {
            extract_batch_into(&pool, &engine, docs, tau, &opts, &mut buf);
        }
        let batch_s = time_median(rounds, || {
            extract_batch_into(&pool, &engine, docs, tau, &opts, &mut buf);
            buf.slots().iter().map(|s| s.matches.len()).sum::<usize>()
        });
        let docs_per_s = docs.len() as f64 / batch_s;
        docs_per_s_by_threads.push((t, docs_per_s));
        rows.push(format!(
            "{{\"threads\": {}, \"batch_s\": {:.6}, \"batch_docs_per_s\": {:.2}, \"per_doc_us\": {:.2}}}",
            t,
            batch_s,
            docs_per_s,
            batch_s / docs.len() as f64 * 1e6,
        ));
    }

    // The sharded engine's routed extraction over the same corpus: the
    // small-document sequential path and forced pool fan-out, both through
    // a generation built once (8 shards, global pool).
    let sharded = ShardedEngine::build(data.dictionary.clone(), &data.rules, &data.interner, config, 8);
    let generation = sharded.snapshot();
    let mut shard_scratch = ExtractScratch::new();
    let mut routed = |limits: &ExtractLimits| {
        time_median(rounds, || {
            let mut matches = 0usize;
            for doc in docs {
                matches += generation.extract_scratched(doc, tau, limits, None, &mut shard_scratch).matches.len();
            }
            matches
        })
    };
    let seq_s = routed(&ExtractLimits { fanout_threshold: Some(u64::MAX), ..ExtractLimits::UNLIMITED });
    let fan_s = routed(&ExtractLimits { fanout_threshold: Some(0), ..ExtractLimits::UNLIMITED });

    let first = docs_per_s_by_threads.first().expect("rows").1;
    let last = docs_per_s_by_threads.last().expect("rows").1;
    let scaling = last / first;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let report = format!(
        concat!(
            "{{\n  \"bench\": \"shard_scaling\",\n  \"dataset\": \"{}\",\n  \"tau\": {},\n  \"docs\": {},\n",
            "  \"cores\": {},\n  \"per_doc_p50_us\": {:.2},\n  \"scaling_8v1\": {:.3},\n",
            "  \"sharded_sequential_docs_per_s\": {:.2},\n  \"sharded_fanout_docs_per_s\": {:.2},\n",
            "  \"rows\": [\n    {}\n  ]\n}}\n"
        ),
        data.name,
        tau,
        docs.len(),
        cores,
        per_doc_p50_us,
        scaling,
        docs.len() as f64 / seq_s,
        docs.len() as f64 / fan_s,
        rows.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_shard.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    eprintln!("batch scaling {THREAD_COUNTS:?}: {docs_per_s_by_threads:?} => {scaling:.3}x on {cores} core(s)");

    if gate {
        let floor = (0.5 * cores as f64).clamp(0.7, 4.0);
        assert!(
            scaling >= floor,
            "batch scaling regression: {scaling:.3}x (8 vs 1 workers) under the {floor:.2}x floor for {cores} core(s)"
        );
        eprintln!("scaling gate passed: {scaling:.3}x >= {floor:.2}x");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
