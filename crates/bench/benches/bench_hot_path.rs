//! Hot-path bench: candidate generation with the dense-remap flat window
//! state versus the pre-refactor `BTreeMap` window representation.
//!
//! The baseline is a bench-local, faithful reimplementation of the old
//! `Dynamic` strategy: one `BTreeMap<u64, u32>` window per candidate
//! length, cloned along the Window Extend chain, prefixes collected into a
//! fresh `Vec` per substring, and a per-length scan cache storing owned
//! `Vec<EntityId>` scan results. The measured side is the production
//! [`generate_candidates`] hot path running in a reused
//! [`ExtractScratch`].
//!
//! Besides the criterion groups, wall-clock medians and the
//! baseline/dynamic speedup are written to `BENCH_hot_path.json` in the
//! workspace target directory. Setting `AEETES_BENCH_QUICK=1` skips the
//! criterion groups and runs a reduced wall-clock pass (the CI smoke
//! mode).

use aeetes_bench::{BENCH_SCALE, BENCH_SEED};
use aeetes_core::{generate_candidates, ExtractScratch, Strategy};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use aeetes_sim::Metric;
use aeetes_text::{Document, EntityId, Span};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

/// The old scan: clustered skips, but a fresh `Vec` + `HashSet` per scan.
fn scan_origins(index: &ClusteredIndex, key: u64, s_len: usize, tau: f64, metric: Metric) -> Vec<EntityId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let t = index.order().token_of(key);
    let Some(tp) = index.postings(t) else { return out };
    let (lo, hi) = metric.length_bounds(s_len, tau, usize::MAX);
    let start = tp.first_group_at_least(lo);
    for g in tp.groups_from(start) {
        if g.len() > hi {
            break;
        }
        let plen = metric.prefix_len(g.len(), tau);
        for og in g.origins() {
            if seen.contains(&og.origin) {
                continue;
            }
            for e in og.entries {
                if (e.pos as usize) < plen {
                    seen.insert(og.origin);
                    out.push(og.origin);
                    break;
                }
            }
        }
    }
    out
}

/// The pre-refactor `Dynamic` candidate generation: `BTreeMap` window
/// states cloned along the extend chain, per-substring prefix `Vec`s, and
/// owned scan-result vectors in the per-length cache.
fn baseline_dynamic(index: &ClusteredIndex, doc: &Document, tau: f64, metric: Metric) -> Vec<(Span, EntityId)> {
    let mut pairs: Vec<(Span, EntityId)> = Vec::new();
    let Some(bounds) = metric_window_bounds(index.min_set_len(), index.max_set_len(), tau, metric) else {
        return pairs;
    };
    let order = index.order();
    let n = doc.len();
    let keys: Vec<u64> = doc.tokens().iter().map(|&t| order.key(t)).collect();
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut states: Vec<BTreeMap<u64, u32>> = Vec::new();
    let mut caches: Vec<HashMap<(u64, usize), Vec<EntityId>>> = Vec::new();
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        let fit = lmax - bounds.min + 1;
        if p == 0 {
            let mut w: BTreeMap<u64, u32> = BTreeMap::new();
            for &key in &keys[..bounds.min.min(n)] {
                *w.entry(key).or_insert(0) += 1;
            }
            states.push(w);
            caches.push(HashMap::new());
            for i in 1..fit {
                let mut w = states[i - 1].clone(); // the clone storm
                *w.entry(keys[bounds.min + i - 1]).or_insert(0) += 1;
                states.push(w);
                caches.push(HashMap::new());
            }
        } else {
            states.truncate(fit);
            caches.truncate(fit);
            for (i, w) in states.iter_mut().enumerate() {
                let l = bounds.min + i;
                match w.get_mut(&keys[p - 1]) {
                    Some(c) if *c > 1 => *c -= 1,
                    _ => {
                        w.remove(&keys[p - 1]);
                    }
                }
                *w.entry(keys[p + l - 1]).or_insert(0) += 1;
            }
        }
        for (i, w) in states.iter().enumerate() {
            let l = bounds.min + i;
            let span = Span::new(p, l);
            let s_len = w.len();
            let k = metric.prefix_len(s_len, tau);
            let prefix: Vec<u64> = w.keys().take(k).copied().collect();
            let cache = &mut caches[i];
            cache.retain(|&(key, _), _| prefix.binary_search(&key).is_ok());
            for &key in &prefix {
                if key >> 32 == 0 {
                    continue; // invalid token: empty posting list
                }
                let origins = cache.entry((key, s_len)).or_insert_with(|| scan_origins(index, key, s_len, tau, metric));
                for &e in origins.iter() {
                    if seen.insert((span.start, span.len, e.0)) {
                        pairs.push((span, e));
                    }
                }
            }
        }
    }
    pairs
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("AEETES_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let data = generate(&DatasetProfile::pubmed_like().scaled(BENCH_SCALE), BENCH_SEED);
    let mut interner = data.interner.clone();
    // A small repetitive non-entity vocabulary: filler tokens never occur
    // in the dictionary, so they are invalid in the global order and every
    // window over a filler run is pure maintenance work.
    let noise: Vec<_> = (0..8).map(|i| interner.intern(&format!("filler{i}"))).collect();
    let tau = 0.6;
    let metric = Metric::Jaccard;
    let dd = DerivedDictionary::build(&data.dictionary, &data.rules, &DeriveConfig::default());
    let index = ClusteredIndex::build(&dd, &interner);
    // Sliding-window generation is a steady-state cost: concatenate runs of
    // dataset documents into longer documents, keeping mention-bearing text
    // intact but diluting it 1:4 with filler runs — the shape of real
    // prose, where most windows cover no entity at all.
    let docs: Vec<Document> = data
        .documents
        .chunks(6)
        .take(6)
        .map(|chunk| {
            let mut toks = Vec::new();
            for (j, d) in chunk.iter().enumerate() {
                toks.extend_from_slice(d.tokens());
                for i in 0..4 * d.len() {
                    toks.push(noise[(i + 7 * j) % noise.len()]);
                }
            }
            Document::from_tokens(toks)
        })
        .collect();
    let docs = &docs[..];

    // The baseline must stay a faithful reimplementation: same candidate
    // pairs, in the same discovery order, on every document.
    let mut check = ExtractScratch::new();
    for doc in docs {
        let (pairs, _) = generate_candidates(&index, doc, tau, metric, Strategy::Dynamic, &mut check);
        assert_eq!(baseline_dynamic(&index, doc, tau, metric), pairs, "baseline diverged from production candidates");
    }

    if !quick {
        let mut g = c.benchmark_group("hot_path");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_millis(1200));
        g.bench_function("candidates/btreemap_baseline", |b| {
            b.iter(|| {
                for doc in docs {
                    black_box(baseline_dynamic(&index, doc, tau, metric));
                }
            });
        });
        for (name, strategy) in [("dynamic", Strategy::Dynamic), ("lazy", Strategy::Lazy)] {
            let mut scratch = ExtractScratch::new();
            g.bench_function(format!("candidates/{name}"), |b| {
                b.iter(|| {
                    for doc in docs {
                        black_box(generate_candidates(&index, doc, tau, metric, strategy, &mut scratch).0.len());
                    }
                });
            });
        }
        g.finish();
    }

    // Wall-clock summary for BENCH_hot_path.json. Variants are sampled
    // round-robin (one batch each per round) so allocator and machine state
    // drift hits every variant equally, then summarized by per-variant
    // median.
    let runs = if quick { 9 } else { 21 };
    let mut dyn_scratch = ExtractScratch::new();
    let mut lazy_scratch = ExtractScratch::new();
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..runs {
        samples[0].push(time_median(1, || {
            for doc in docs {
                black_box(baseline_dynamic(&index, doc, tau, metric));
            }
        }));
        samples[1].push(time_median(1, || {
            for doc in docs {
                black_box(generate_candidates(&index, doc, tau, metric, Strategy::Dynamic, &mut dyn_scratch).0.len());
            }
        }));
        samples[2].push(time_median(1, || {
            for doc in docs {
                black_box(generate_candidates(&index, doc, tau, metric, Strategy::Lazy, &mut lazy_scratch).0.len());
            }
        }));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        v[v.len() / 2]
    };
    let baseline_s = median(&mut samples[0]);
    let dynamic_s = median(&mut samples[1]);
    let lazy_s = median(&mut samples[2]);
    let rows = [
        format!(
            "{{\"variant\": \"btreemap_baseline\", \"batch_s\": {:.6}, \"docs_per_s\": {:.2}}}",
            baseline_s,
            docs.len() as f64 / baseline_s
        ),
        format!(
            "{{\"variant\": \"dynamic\", \"batch_s\": {:.6}, \"docs_per_s\": {:.2}, \"speedup_vs_baseline\": {:.2}}}",
            dynamic_s,
            docs.len() as f64 / dynamic_s,
            baseline_s / dynamic_s
        ),
        format!(
            "{{\"variant\": \"lazy\", \"batch_s\": {:.6}, \"docs_per_s\": {:.2}, \"speedup_vs_baseline\": {:.2}}}",
            lazy_s,
            docs.len() as f64 / lazy_s,
            baseline_s / lazy_s
        ),
    ];
    eprintln!("hot path speedup (btreemap baseline / dense dynamic): {:.2}x", baseline_s / dynamic_s);

    let report = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"dataset\": \"{}\",\n  \"tau\": {tau},\n  \"docs\": {},\n  \"quick\": {quick},\n  \"speedup_dynamic\": {:.2},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        data.name,
        docs.len(),
        baseline_s / dynamic_s,
        rows.join(",\n    ")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_hot_path.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
