//! Table 1 bench: dataset generation and statistics computation for the
//! three calibrated corpora.

use aeetes_bench::{fixture, profiles, BENCH_SCALE, BENCH_SEED};
use aeetes_datagen::generate;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in profiles() {
        let name = profile.name.clone();
        let scaled = profile.clone().scaled(BENCH_SCALE);
        g.bench_function(format!("generate/{name}"), |b| {
            b.iter(|| black_box(generate(&scaled, BENCH_SEED)));
        });
        let fx = fixture(profile);
        g.bench_function(format!("statistics/{name}"), |b| {
            b.iter(|| black_box(fx.data.statistics(500)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
