//! Figure 9 bench: end-to-end extraction time per document, Aeetes vs
//! FaerieR, θ ∈ {0.7, 0.8, 0.9}.

use aeetes_baselines::Faerie;
use aeetes_bench::{fixture, profiles, TAUS};
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in profiles() {
        let fx = fixture(profile);
        let dd = DerivedDictionary::build(&fx.data.dictionary, &fx.data.rules, &DeriveConfig::default());
        let faerier = Faerie::build_derived(&dd);
        let docs = &fx.data.documents[..fx.data.documents.len().min(3)];
        for tau in TAUS {
            g.bench_function(format!("aeetes/{}/tau{tau}", fx.data.name), |b| {
                b.iter(|| {
                    for doc in docs {
                        black_box(fx.engine.extract(doc, tau));
                    }
                });
            });
            g.bench_function(format!("faerier/{}/tau{tau}", fx.data.name), |b| {
                b.iter(|| {
                    for doc in docs {
                        black_box(faerier.extract(doc, tau));
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
