//! Figure 11 bench: candidate-generation cost per strategy. The paper's
//! metric (accessed inverted-index entries) is deterministic, so it is
//! printed once per configuration; criterion then times the corresponding
//! candidate-generation pass so the counter reduction can be correlated
//! with wall-clock cost.

use aeetes_bench::{fixture, profiles, TAUS};
use aeetes_core::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in profiles() {
        let fx = fixture(profile);
        let docs = &fx.data.documents[..fx.data.documents.len().min(3)];
        for tau in TAUS {
            for strategy in Strategy::ALL {
                // Deterministic accessed-entries figure (the actual Fig 11
                // series), reported alongside the timing.
                let mut accessed = 0u64;
                for doc in docs {
                    let (_, stats) = fx.engine.extract_with(doc, tau, strategy);
                    accessed += stats.accessed_entries;
                }
                eprintln!("fig11/{}/{}/tau{tau}: accessed_entries_per_doc = {}", fx.data.name, strategy.name(), accessed / docs.len() as u64);
                g.bench_function(format!("{}/{}/tau{tau}", fx.data.name, strategy.name()), |b| {
                    b.iter(|| {
                        for doc in docs {
                            black_box(fx.engine.extract_with(doc, tau, strategy));
                        }
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
