//! Property tests for the similarity metrics.

use aeetes_sim::{edit_similarity, fuzzy_jaccard, intersection_size, jaccard, levenshtein, levenshtein_bounded, sorted_set, Metric};
use aeetes_text::TokenId;
use proptest::prelude::*;

fn toks() -> impl Strategy<Value = Vec<TokenId>> {
    proptest::collection::vec((0u32..40).prop_map(TokenId), 0..15)
}

proptest! {
    /// All metric scores live in [0, 1], are symmetric, and reach 1 exactly
    /// on identical sets (given equal sizes and full overlap).
    #[test]
    fn metric_scores_are_normalized_and_symmetric(a in toks(), b in toks()) {
        let (a, b) = (sorted_set(&a), sorted_set(&b));
        let inter = intersection_size(&a, &b);
        for m in Metric::ALL {
            let s = m.score(a.len(), b.len(), inter);
            let t = m.score(b.len(), a.len(), inter);
            prop_assert!((0.0..=1.0).contains(&s), "{m}: {s}");
            prop_assert!((s - t).abs() < 1e-12, "{m} not symmetric");
        }
        let self_inter = intersection_size(&a, &a);
        prop_assert_eq!(self_inter, a.len());
        for m in Metric::ALL {
            prop_assert!((m.score(a.len(), a.len(), self_inter) - 1.0).abs() < 1e-12);
        }
    }

    /// Jaccard relates to the other metrics by the known inequalities:
    /// Jaccard ≤ Dice ≤ Overlap and Jaccard ≤ Cosine ≤ Overlap.
    #[test]
    fn metric_ordering_inequalities(a in toks(), b in toks()) {
        let (a, b) = (sorted_set(&a), sorted_set(&b));
        prop_assume!(!a.is_empty() && !b.is_empty());
        let o = intersection_size(&a, &b);
        let j = Metric::Jaccard.score(a.len(), b.len(), o);
        let d = Metric::Dice.score(a.len(), b.len(), o);
        let c = Metric::Cosine.score(a.len(), b.len(), o);
        let ov = Metric::Overlap.score(a.len(), b.len(), o);
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= ov + 1e-12);
        prop_assert!(j <= c + 1e-12);
        prop_assert!(c <= ov + 1e-12);
    }

    /// Randomized filter soundness: whenever a pair reaches τ, it passes
    /// the length, single-side and pair-overlap bounds of its metric.
    #[test]
    fn random_filter_soundness(a in toks(), b in toks(), tau_pct in 50u8..=100) {
        let (a, b) = (sorted_set(&a), sorted_set(&b));
        prop_assume!(!a.is_empty() && !b.is_empty());
        let tau = tau_pct as f64 / 100.0;
        let o = intersection_size(&a, &b);
        for m in Metric::ALL {
            if m.score(a.len(), b.len(), o) >= tau {
                let (lo, hi) = m.length_bounds(a.len(), tau, usize::MAX);
                prop_assert!(b.len() >= lo && b.len() <= hi, "{m} length filter false negative");
                prop_assert!(o >= m.min_overlap_single(a.len(), tau));
                prop_assert!(o >= m.required_overlap(a.len(), b.len(), tau));
            }
        }
    }

    /// Levenshtein is a metric: symmetric, zero iff equal, triangle
    /// inequality; `levenshtein_bounded` agrees with the full computation.
    #[test]
    fn levenshtein_is_a_metric(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab == 0, a == b);
        let ac = levenshtein(&a, &c);
        let cb = levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle: d({a},{b})={ab} > {ac}+{cb}");
        for k in 0..=ab {
            let got = levenshtein_bounded(&a, &b, k);
            if ab <= k {
                prop_assert_eq!(got, Some(ab));
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }

    /// Edit similarity is in [0,1], 1 iff equal.
    #[test]
    fn edit_similarity_normalized(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        let s = edit_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s == 1.0, a == b);
    }

    /// With δ = 1 and duplicate-free inputs, Fuzzy Jaccard equals exact
    /// set Jaccard.
    #[test]
    fn fuzzy_jaccard_delta_one_is_exact(words in proptest::collection::hash_set("[a-c]{1,4}", 0..8),
                                        other in proptest::collection::hash_set("[a-c]{1,4}", 0..8)) {
        let a: Vec<&str> = words.iter().map(String::as_str).collect();
        let b: Vec<&str> = other.iter().map(String::as_str).collect();
        let fj = fuzzy_jaccard(&a, &b, 1.0);
        // exact jaccard on the string sets
        let inter = a.iter().filter(|w| b.contains(w)).count();
        let exact = if a.is_empty() && b.is_empty() {
            1.0
        } else {
            inter as f64 / (a.len() + b.len() - inter) as f64
        };
        prop_assert!((fj - exact).abs() < 1e-9, "fj={fj} exact={exact}");
    }

    /// Fuzzy Jaccard is monotone in δ: lowering the token threshold can
    /// only increase the score.
    #[test]
    fn fuzzy_jaccard_monotone_in_delta(a in proptest::collection::vec("[a-c]{1,5}", 0..6),
                                       b in proptest::collection::vec("[a-c]{1,5}", 0..6)) {
        let av: Vec<&str> = a.iter().map(String::as_str).collect();
        let bv: Vec<&str> = b.iter().map(String::as_str).collect();
        let strict = fuzzy_jaccard(&av, &bv, 1.0);
        let loose = fuzzy_jaccard(&av, &bv, 0.5);
        prop_assert!(loose >= strict - 1e-9, "loose={loose} strict={strict}");
    }

    /// `jaccard` on token slices agrees with Metric::Jaccard arithmetic.
    #[test]
    fn slice_jaccard_matches_metric(a in toks(), b in toks()) {
        let (a, b) = (sorted_set(&a), sorted_set(&b));
        let inter = intersection_size(&a, &b);
        let expect = Metric::Jaccard.score(a.len(), b.len(), inter);
        prop_assert!((jaccard(&a, &b) - expect).abs() < 1e-12);
    }
}
