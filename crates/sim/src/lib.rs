//! Similarity metrics for the Aeetes framework.
//!
//! * Token-set metrics over sorted distinct token slices: [`jaccard`],
//!   [`overlap_coeff`], [`cosine`], [`dice`] (paper §2.2 notes the framework
//!   extends to all of these).
//! * Character metrics: [`levenshtein`], banded [`levenshtein_bounded`],
//!   [`edit_similarity`].
//! * [`fuzzy_jaccard`] — the *Fuzzy Jaccard* baseline of Wang et al.
//!   (ICDE'11), used as a comparison metric in the paper's Table 2.
//! * [`JaccArVerifier`] — exact verification of the paper's Asymmetric
//!   Rule-based Jaccard over a [`aeetes_rules::DerivedDictionary`], plus the weighted
//!   extension.
//!
//! All set metrics require *sorted, deduplicated* inputs (see
//! [`sorted_set`]); this keeps the hot verification path allocation-free.

mod edit;
mod fuzzy;
mod jaccar;
mod metric;
mod set;

pub use edit::{edit_similarity, levenshtein, levenshtein_bounded};
pub use fuzzy::{fuzzy_jaccard, fuzzy_overlap};
pub use jaccar::{JaccArScore, JaccArVerifier};
pub use metric::Metric;
pub use set::{cosine, dice, intersection_size, jaccard, jaccard_length_bounds, overlap_coeff, sorted_set};
