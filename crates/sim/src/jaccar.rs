//! Asymmetric Rule-based Jaccard (JaccAR) verification — paper Definition 2.1.
//!
//! `JaccAR(e, s) = max_{eᵢ ∈ D(e)} Jaccard(eᵢ, s)`: rules were applied to the
//! entity off-line; verification scans the precomputed variants and keeps the
//! best syntactic score. The weighted extension multiplies each variant's
//! Jaccard by its rule-weight product.

use crate::set::{intersection_size, jaccard_length_bounds, sorted_set};
use aeetes_rules::{DerivedDictionary, DerivedId};
use aeetes_text::{EntityId, TokenId};

/// The outcome of a JaccAR verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaccArScore {
    /// The similarity value in `[0, 1]`.
    pub value: f64,
    /// Which variant achieved the maximum (`None` when the entity has no
    /// variants, i.e. the score is `0`). The id is the offset of the variant
    /// within `D(e)` re-based to a global [`DerivedId`].
    pub best: Option<DerivedId>,
}

/// Verifies JaccAR scores against a [`DerivedDictionary`].
///
/// Construction precomputes the sorted distinct token set of every derived
/// entity once, so each verification is a pure merge-count per variant with
/// a length-filter early exit.
#[derive(Debug)]
pub struct JaccArVerifier<'a> {
    dd: &'a DerivedDictionary,
    /// Sorted distinct token sets, parallel to the derived dictionary.
    sets: Vec<Vec<TokenId>>,
    /// Global id of the first variant of each origin entity.
    first_id: Vec<u32>,
}

impl<'a> JaccArVerifier<'a> {
    /// Builds the verifier (O(total derived tokens · log)).
    pub fn new(dd: &'a DerivedDictionary) -> Self {
        let mut sets = Vec::with_capacity(dd.len());
        for (_, d) in dd.iter() {
            sets.push(sorted_set(d.tokens));
        }
        let mut first_id = Vec::with_capacity(dd.origins());
        let mut acc = 0u32;
        for e in 0..dd.origins() {
            first_id.push(acc);
            acc += dd.variants(EntityId(e as u32)).len() as u32;
        }
        Self { dd, sets, first_id }
    }

    /// The underlying derived dictionary.
    pub fn derived_dictionary(&self) -> &DerivedDictionary {
        self.dd
    }

    /// The sorted distinct token set of a derived entity.
    pub fn set_of(&self, id: DerivedId) -> &[TokenId] {
        &self.sets[id.idx()]
    }

    /// Exact `JaccAR(e, s)` for a sorted distinct substring set `s_set`.
    ///
    /// `tau` enables the per-variant length filter and an early exit on a
    /// perfect score; pass `0.0` to always compute the true maximum.
    pub fn verify(&self, e: EntityId, s_set: &[TokenId], tau: f64) -> JaccArScore {
        self.verify_impl(e, s_set, tau, false)
    }

    /// Weighted JaccAR: each variant's Jaccard is scaled by its rule-weight
    /// product before taking the maximum (paper §8 extension).
    pub fn verify_weighted(&self, e: EntityId, s_set: &[TokenId], tau: f64) -> JaccArScore {
        self.verify_impl(e, s_set, tau, true)
    }

    fn verify_impl(&self, e: EntityId, s_set: &[TokenId], tau: f64, weighted: bool) -> JaccArScore {
        let base = self.first_id[e.idx()];
        let variants = self.dd.variants(e);
        let (lo, hi) = if tau > 0.0 {
            jaccard_length_bounds(s_set.len(), tau)
        } else {
            (0, usize::MAX)
        };
        let mut best = JaccArScore { value: 0.0, best: None };
        for (off, d) in variants.iter().enumerate() {
            let id = DerivedId(base + off as u32);
            let set = &self.sets[id.idx()];
            if tau > 0.0 && (set.len() < lo || set.len() > hi) {
                continue;
            }
            let inter = intersection_size(set, s_set);
            let denom = set.len() + s_set.len() - inter;
            let mut score = if denom == 0 { 1.0 } else { inter as f64 / denom as f64 };
            if weighted {
                score *= d.weight;
            }
            if score > best.value || best.best.is_none() && score > 0.0 {
                best = JaccArScore { value: score, best: Some(id) };
            }
            if best.value >= 1.0 {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    struct Ctx {
        int: Interner,
        tok: Tokenizer,
        dict: Dictionary,
        rules: RuleSet,
    }

    impl Ctx {
        fn new() -> Self {
            Self {
                int: Interner::new(),
                tok: Tokenizer::default(),
                dict: Dictionary::new(),
                rules: RuleSet::new(),
            }
        }
        fn entity(&mut self, s: &str) -> EntityId {
            self.dict.push(s, &self.tok, &mut self.int)
        }
        fn rule(&mut self, l: &str, r: &str) {
            self.rules.push_str(l, r, &self.tok.clone(), &mut self.int).unwrap();
        }
        fn wrule(&mut self, l: &str, r: &str, w: f64) {
            self.rules.push_weighted_str(l, r, w, &self.tok.clone(), &mut self.int).unwrap();
        }
        fn build(&self) -> DerivedDictionary {
            DerivedDictionary::build(&self.dict, &self.rules, &DeriveConfig::default())
        }
        fn set(&mut self, s: &str) -> Vec<TokenId> {
            let toks = self.tok.clone().tokenize(s, &mut self.int);
            sorted_set(&toks)
        }
    }

    /// Paper Example 1.1 / §2.2: synonym-rewritten mention scores 1.0.
    #[test]
    fn synonym_mention_scores_one() {
        let mut c = Ctx::new();
        let e = c.entity("UQ AU");
        c.rule("UQ", "University of Queensland");
        c.rule("AU", "Australia");
        let dd = c.build();
        let s = c.set("university of queensland australia");
        let v = JaccArVerifier::new(&dd);
        let score = v.verify(e, &s, 0.9);
        assert_eq!(score.value, 1.0);
        assert!(score.best.is_some());
    }

    #[test]
    fn jaccar_at_least_plain_jaccard() {
        let mut c = Ctx::new();
        let e = c.entity("purdue university usa");
        c.rule("usa", "united states");
        let dd = c.build();
        let s = c.set("purdue university usa");
        let v = JaccArVerifier::new(&dd);
        assert_eq!(v.verify(e, &s, 0.0).value, 1.0);
    }

    #[test]
    fn picks_best_variant_not_first() {
        let mut c = Ctx::new();
        let e = c.entity("big apple marathon");
        c.rule("big apple", "new york");
        let dd = c.build();
        let s = c.set("new york marathon");
        let v = JaccArVerifier::new(&dd);
        let score = v.verify(e, &s, 0.5);
        assert_eq!(score.value, 1.0);
        let best = score.best.unwrap();
        assert_eq!(dd.derived(best).rules.len(), 1);
    }

    #[test]
    fn no_variants_scores_zero() {
        let mut c = Ctx::new();
        let e = c.entity("...");
        let dd = c.build();
        let s = c.set("anything");
        let v = JaccArVerifier::new(&dd);
        let score = v.verify(e, &s, 0.0);
        assert_eq!(score.value, 0.0);
        assert!(score.best.is_none());
    }

    #[test]
    fn tau_zero_equals_tau_filtered_when_above_threshold() {
        let mut c = Ctx::new();
        let e = c.entity("machine learning conference");
        c.rule("machine learning", "ml");
        let dd = c.build();
        let s = c.set("ml conference");
        let v = JaccArVerifier::new(&dd);
        let unfiltered = v.verify(e, &s, 0.0);
        let filtered = v.verify(e, &s, 0.9);
        assert_eq!(unfiltered.value, 1.0);
        assert_eq!(filtered.value, unfiltered.value);
    }

    #[test]
    fn weighted_scales_by_rule_weight() {
        let mut c = Ctx::new();
        let e = c.entity("nyc marathon");
        c.wrule("nyc", "new york city", 0.5);
        let dd = c.build();
        let s = c.set("new york city marathon");
        let v = JaccArVerifier::new(&dd);
        assert_eq!(v.verify(e, &s, 0.0).value, 1.0);
        let w = v.verify_weighted(e, &s, 0.0);
        assert!((w.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_prefers_unweighted_origin_when_better() {
        let mut c = Ctx::new();
        let e = c.entity("new york marathon");
        c.wrule("new york", "nyc", 0.1);
        let dd = c.build();
        let s = c.set("new york marathon");
        let v = JaccArVerifier::new(&dd);
        let w = v.verify_weighted(e, &s, 0.0);
        assert_eq!(w.value, 1.0); // origin variant, weight 1.0
        assert!(dd.derived(w.best.unwrap()).rules.is_empty());
    }

    #[test]
    fn multi_entity_ids_line_up() {
        let mut c = Ctx::new();
        let a = c.entity("alpha beta");
        let b = c.entity("gamma delta");
        c.rule("alpha", "a1");
        c.rule("gamma", "g1");
        let dd = c.build();
        let v = JaccArVerifier::new(&dd);
        let sa = c.set("a1 beta");
        let sb = c.set("g1 delta");
        let ra = v.verify(a, &sa, 0.0);
        let rb = v.verify(b, &sb, 0.0);
        assert_eq!(ra.value, 1.0);
        assert_eq!(rb.value, 1.0);
        assert_eq!(dd.derived(ra.best.unwrap()).origin, a);
        assert_eq!(dd.derived(rb.best.unwrap()).origin, b);
    }
}
