//! Character-level edit distance (supports the Fuzzy-Jaccard baseline and
//! the typo-tolerance extension).

/// Levenshtein distance between two strings, O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Banded Levenshtein: returns `Some(d)` if `d ≤ k`, else `None`, in
/// O(k·max(|a|,|b|)) time. Used when verifying against a known threshold.
pub fn levenshtein_bounded(a: &str, b: &str, k: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > k {
        return None;
    }
    if a.is_empty() {
        return (b.len() <= k).then_some(b.len());
    }
    if b.is_empty() {
        return (a.len() <= k).then_some(a.len());
    }
    const BIG: usize = usize::MAX / 2;
    // Classic banded DP over rows of `a`, columns restricted to |i-j| ≤ k.
    // Cells outside the band hold BIG and never contribute.
    let mut prev = vec![BIG; b.len() + 1];
    let mut cur = vec![BIG; b.len() + 1];
    for (j, p) in prev.iter_mut().enumerate().take(k.min(b.len()) + 1) {
        *p = j;
    }
    for i in 1..=a.len() {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(b.len());
        cur.fill(BIG);
        if lo == 0 {
            cur[0] = i;
        }
        for j in lo.max(1)..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = BIG;
            if prev[j - 1] < BIG {
                best = best.min(prev[j - 1] + cost);
            }
            if prev[j] < BIG {
                best = best.min(prev[j] + 1);
            }
            if cur[j - 1] < BIG {
                best = best.min(cur[j - 1] + 1);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev, &mut cur);
        if prev.iter().all(|&v| v > k) {
            return None;
        }
    }
    let d = prev[b.len()];
    (d <= k).then_some(d)
}

/// Normalized edit similarity `1 − ed(a, b) / max(|a|, |b|)` in `[0, 1]`.
///
/// Two empty strings have similarity `1.0`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("aukland", "auckland"), 1);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_agrees_with_full() {
        let words = ["kitten", "sitting", "", "a", "ab", "abc", "abcd", "university", "universe"];
        for a in words {
            for b in words {
                let d = levenshtein(a, b);
                for k in 0..6 {
                    let got = levenshtein_bounded(a, b, k);
                    if d <= k {
                        assert_eq!(got, Some(d), "a={a} b={b} k={k}");
                    } else {
                        assert_eq!(got, None, "a={a} b={b} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn similarity_range_and_values() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("aukland", "auckland");
        assert!((s - (1.0 - 1.0 / 8.0)).abs() < 1e-12);
    }
}
