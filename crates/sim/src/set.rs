//! Token-set similarity metrics over sorted distinct token slices.

use aeetes_text::TokenId;

/// Returns the sorted, deduplicated token set of `tokens`.
pub fn sorted_set(tokens: &[TokenId]) -> Vec<TokenId> {
    let mut v = tokens.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Size of the intersection of two sorted distinct slices (linear merge).
pub fn intersection_size(a: &[TokenId], b: &[TokenId]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs must be sorted distinct");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs must be sorted distinct");
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` of two sorted distinct slices.
///
/// Two empty sets are defined as similarity `1.0` (they are equal).
pub fn jaccard(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b);
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Overlap coefficient `|a ∩ b| / min(|a|, |b|)`.
pub fn overlap_coeff(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / a.len().min(b.len()) as f64
}

/// Cosine similarity `|a ∩ b| / √(|a|·|b|)` for binary token vectors.
pub fn cosine(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Dice coefficient `2·|a ∩ b| / (|a| + |b|)`.
pub fn dice(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Length filter bounds (paper §3.1): a set of size `n` can only reach
/// Jaccard ≥ τ against sets whose size lies in `[⌊n·τ⌋ max 1, ⌈n/τ⌉]`.
pub fn jaccard_length_bounds(n: usize, tau: f64) -> (usize, usize) {
    debug_assert!((0.0..=1.0).contains(&tau) && tau > 0.0);
    let lo = ((n as f64 * tau + 1e-9).floor() as usize).max(1);
    let hi = (n as f64 / tau - 1e-9).ceil() as usize;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&x| TokenId(x)).collect()
    }

    #[test]
    fn intersection_basics() {
        assert_eq!(intersection_size(&s(&[1, 2, 3]), &s(&[2, 3, 4])), 2);
        assert_eq!(intersection_size(&s(&[]), &s(&[1])), 0);
        assert_eq!(intersection_size(&s(&[1, 5, 9]), &s(&[2, 6, 10])), 0);
        assert_eq!(intersection_size(&s(&[1, 2]), &s(&[1, 2])), 2);
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard(&s(&[1, 2, 3]), &s(&[1, 2, 3])), 1.0);
        assert_eq!(jaccard(&s(&[1, 2]), &s(&[3, 4])), 0.0);
        assert!((jaccard(&s(&[1, 2, 3]), &s(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[], &s(&[1])), 0.0);
    }

    #[test]
    fn other_metrics_known_values() {
        let a = s(&[1, 2, 3]);
        let b = s(&[2, 3, 4, 5]);
        assert!((overlap_coeff(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine(&a, &b) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        assert!((dice(&a, &b) - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(overlap_coeff(&[], &[]), 1.0);
        assert_eq!(cosine(&a, &[]), 0.0);
        assert_eq!(dice(&[], &[]), 1.0);
    }

    #[test]
    fn sorted_set_dedups() {
        assert_eq!(sorted_set(&s(&[3, 1, 3, 2, 1])), s(&[1, 2, 3]));
        assert!(sorted_set(&[]).is_empty());
    }

    #[test]
    fn length_bounds_match_paper() {
        // τ=0.8, n=5 → sizes in [4, 7]
        assert_eq!(jaccard_length_bounds(5, 0.8), (4, 7));
        // n=1 lower bound clamps to 1
        assert_eq!(jaccard_length_bounds(1, 0.7), (1, 2));
    }

    #[test]
    fn length_bounds_are_sound() {
        // Any pair violating the bounds must have jaccard < τ.
        for n in 1usize..10 {
            for m in 1usize..10 {
                let a: Vec<TokenId> = (0..n as u32).map(TokenId).collect();
                // best case: maximal overlap
                let b: Vec<TokenId> = (0..m as u32).map(TokenId).collect();
                let tau = 0.7;
                let (lo, hi) = jaccard_length_bounds(n, tau);
                if m < lo || m > hi {
                    assert!(jaccard(&a, &b) < tau, "n={n} m={m}");
                }
            }
        }
    }
}
