//! Token-set similarity metrics as a first-class abstraction.
//!
//! The paper (§2.2) notes that the framework "can also be easily extended
//! to other similarity metrics, such as Overlap, Cosine and Dice". This
//! module carries each metric's *filter arithmetic* — score, length-filter
//! bounds, prefix length and required overlap — so the extraction engine
//! can run any of them through the same candidate-generation machinery.
//!
//! Derivations (with `o = |a ∩ b|`, set sizes `a`, `b`, threshold τ):
//!
//! | metric  | score            | single-side bound    | length bounds for `b` |
//! |---------|------------------|----------------------|------------------------|
//! | Jaccard | `o/(a+b−o)`      | `o ≥ τ·a`            | `[τ·a, a/τ]`           |
//! | Dice    | `2o/(a+b)`       | `o ≥ τ·a/(2−τ)`      | `[τ·a/(2−τ), a(2−τ)/τ]`|
//! | Cosine  | `o/√(a·b)`       | `o ≥ τ²·a`           | `[τ²·a, a/τ²]`         |
//! | Overlap | `o/min(a,b)`     | `o ≥ τ·min(a,b)`     | `[1, ∞)` (capped)      |
//!
//! The prefix of a set of size `n` is its first `n − ⌈bound(n)⌉ + 1`
//! globally-ordered tokens; Lemma 3.1 generalizes to every metric whose
//! single-side bound is monotone, which all four are. Overlap has no upper
//! length bound, so extraction clamps it with an explicit mention-length
//! cap (see [`Metric::length_bounds`]).

/// Rounding guard (see `aeetes-index::filters`).
const EPS: f64 = 1e-9;

/// A token-set similarity metric with its filter arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Jaccard similarity `|a∩b| / |a∪b|` (the paper's default).
    #[default]
    Jaccard,
    /// Dice coefficient `2|a∩b| / (|a|+|b|)`.
    Dice,
    /// Cosine similarity `|a∩b| / √(|a|·|b|)`.
    Cosine,
    /// Overlap coefficient `|a∩b| / min(|a|,|b|)`.
    Overlap,
}

impl Metric {
    /// All supported metrics.
    pub const ALL: [Metric; 4] = [Metric::Jaccard, Metric::Dice, Metric::Cosine, Metric::Overlap];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Jaccard => "jaccard",
            Metric::Dice => "dice",
            Metric::Cosine => "cosine",
            Metric::Overlap => "overlap",
        }
    }

    /// The similarity of two sets of sizes `a`, `b` sharing `inter` tokens.
    ///
    /// Two empty sets score `1.0`; an empty set against a non-empty one
    /// scores `0.0`.
    pub fn score(self, a: usize, b: usize, inter: usize) -> f64 {
        debug_assert!(inter <= a.min(b));
        if a == 0 && b == 0 {
            return 1.0;
        }
        if a == 0 || b == 0 {
            return 0.0;
        }
        let (a, b, o) = (a as f64, b as f64, inter as f64);
        match self {
            Metric::Jaccard => o / (a + b - o),
            Metric::Dice => 2.0 * o / (a + b),
            Metric::Cosine => o / (a * b).sqrt(),
            Metric::Overlap => o / a.min(b),
        }
    }

    /// Sizes a set of size `n` must have to possibly reach `tau` against a
    /// set of size within the returned `[lo, hi]` (the length filter).
    /// `cap` bounds the upper end for metrics without one (Overlap).
    pub fn length_bounds(self, n: usize, tau: f64, cap: usize) -> (usize, usize) {
        debug_assert!(tau > 0.0 && tau <= 1.0);
        let nf = n as f64;
        let (lo, hi) = match self {
            Metric::Jaccard => (nf * tau, nf / tau),
            Metric::Dice => (nf * tau / (2.0 - tau), nf * (2.0 - tau) / tau),
            Metric::Cosine => (nf * tau * tau, nf / (tau * tau)),
            Metric::Overlap => (1.0, cap as f64),
        };
        (((lo + EPS).floor() as usize).max(1), ((hi - EPS).ceil() as usize).min(cap.max(1)))
    }

    /// Minimum overlap `o` required against *any* partner for a set of size
    /// `n` (the single-side bound used by the prefix filter).
    pub fn min_overlap_single(self, n: usize, tau: f64) -> usize {
        let nf = n as f64;
        let o = match self {
            Metric::Jaccard => nf * tau,
            Metric::Dice => nf * tau / (2.0 - tau),
            Metric::Cosine => nf * tau * tau,
            // For Overlap, a partner smaller than n weakens the bound all
            // the way to o ≥ τ·1; the only universally sound single-side
            // requirement is one shared token.
            Metric::Overlap => 1.0,
        };
        (o - EPS).ceil().max(1.0) as usize
    }

    /// τ-prefix length for a set of `n` distinct tokens:
    /// `n − min_overlap_single(n) + 1` (zero for an empty set).
    pub fn prefix_len(self, n: usize, tau: f64) -> usize {
        if n == 0 {
            return 0;
        }
        (n - self.min_overlap_single(n, tau) + 1).min(n)
    }

    /// Minimum overlap required for sets of sizes `a` and `b` to reach
    /// `tau` (the pair bound used to early-abort verification merges).
    pub fn required_overlap(self, a: usize, b: usize, tau: f64) -> usize {
        let (af, bf) = (a as f64, b as f64);
        let o = match self {
            Metric::Jaccard => tau * (af + bf) / (1.0 + tau),
            Metric::Dice => tau * (af + bf) / 2.0,
            Metric::Cosine => tau * (af * bf).sqrt(),
            Metric::Overlap => tau * af.min(bf),
        };
        (o - EPS).ceil().max(1.0) as usize
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_match_closed_forms() {
        // a=3, b=4, o=2
        assert!((Metric::Jaccard.score(3, 4, 2) - 2.0 / 5.0).abs() < 1e-12);
        assert!((Metric::Dice.score(3, 4, 2) - 4.0 / 7.0).abs() < 1e-12);
        assert!((Metric::Cosine.score(3, 4, 2) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        assert!((Metric::Overlap.score(3, 4, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        for m in Metric::ALL {
            assert_eq!(m.score(0, 0, 0), 1.0);
            assert_eq!(m.score(0, 3, 0), 0.0);
            assert_eq!(m.score(3, 0, 0), 0.0);
        }
    }

    #[test]
    fn identical_sets_score_one() {
        for m in Metric::ALL {
            for n in 1..8 {
                assert!((m.score(n, n, n) - 1.0).abs() < 1e-12, "{m} n={n}");
            }
        }
    }

    #[test]
    fn jaccard_matches_legacy_arithmetic() {
        for n in 1..20 {
            for tau in [0.7, 0.8, 0.9] {
                let (lo, hi) = Metric::Jaccard.length_bounds(n, tau, usize::MAX);
                let (llo, lhi) = crate::set::jaccard_length_bounds(n, tau);
                assert_eq!((lo, hi), (llo, lhi), "n={n} tau={tau}");
            }
        }
    }

    /// Exhaustive soundness: for every (a, b, o) in a grid, if the score
    /// reaches τ then (1) b is inside a's length bounds, (2) o reaches the
    /// single-side and pair bounds — i.e. no filter can cause a false
    /// negative.
    #[test]
    fn filter_bounds_are_sound() {
        for m in Metric::ALL {
            for tau in [0.5, 0.7, 0.8, 0.9, 1.0] {
                for a in 1usize..=12 {
                    for b in 1usize..=12 {
                        for o in 0..=a.min(b) {
                            if m.score(a, b, o) >= tau {
                                let (lo, hi) = m.length_bounds(a, tau, usize::MAX);
                                assert!(b >= lo && b <= hi, "{m} τ={tau} a={a} b={b} o={o} bounds=({lo},{hi})");
                                assert!(o >= m.min_overlap_single(a, tau), "{m} τ={tau} a={a} b={b} o={o} single={}", m.min_overlap_single(a, tau));
                                assert!(o >= m.required_overlap(a, b, tau), "{m} τ={tau} a={a} b={b} o={o} pair={}", m.required_overlap(a, b, tau));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_len_in_range() {
        for m in Metric::ALL {
            assert_eq!(m.prefix_len(0, 0.8), 0);
            for n in 1..20 {
                for tau in [0.5, 0.7, 0.9, 1.0] {
                    let p = m.prefix_len(n, tau);
                    assert!(p >= 1 && p <= n, "{m} n={n} tau={tau} p={p}");
                }
            }
        }
    }

    #[test]
    fn jaccard_prefix_matches_paper_formula() {
        // ⌊(1−τ)n⌋+1 — via n − ⌈τ·n⌉ + 1, identical for all n, τ.
        for n in 1..30 {
            for tau in [0.7, 0.75, 0.8, 0.85, 0.9] {
                let via_bound = Metric::Jaccard.prefix_len(n, tau);
                let paper = ((1.0 - tau) * n as f64 + EPS).floor() as usize + 1;
                assert_eq!(via_bound, paper.min(n), "n={n} tau={tau}");
            }
        }
    }

    #[test]
    fn overlap_upper_bound_is_the_cap() {
        assert_eq!(Metric::Overlap.length_bounds(5, 0.8, 40), (1, 40));
        assert_eq!(Metric::Jaccard.length_bounds(5, 0.8, 6), (4, 6), "cap also clamps bounded metrics");
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Metric::Dice.to_string(), "dice");
        assert_eq!(Metric::default(), Metric::Jaccard);
    }
}
