//! Fuzzy Jaccard (Wang et al., ICDE 2011 "Fast-Join"), the syntactic
//! baseline metric of the paper's Table 2.
//!
//! Two token *strings* match fuzzily when their normalized edit similarity
//! reaches `delta`; the fuzzy overlap of two token sequences is the weight of
//! a matching between their tokens. Fast-Join computes a maximum weight
//! matching; like most implementations we use the standard greedy
//! approximation (sort candidate pairs by weight, take while disjoint),
//! which is exact whenever weights are distinct enough and is the variant
//! commonly benchmarked.

use crate::edit::edit_similarity;

/// Fuzzy overlap of two token lists: greedy maximum-weight matching over
/// token pairs with `edit_similarity ≥ delta`.
pub fn fuzzy_overlap(a: &[&str], b: &[&str], delta: f64) -> f64 {
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (i, ta) in a.iter().enumerate() {
        for (j, tb) in b.iter().enumerate() {
            let s = if ta == tb { 1.0 } else { edit_similarity(ta, tb) };
            if s >= delta {
                pairs.push((s, i, j));
            }
        }
    }
    // Highest similarity first; ties broken by position for determinism.
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal).then((x.1, x.2).cmp(&(y.1, y.2))));
    let mut used_a = vec![false; a.len()];
    let mut used_b = vec![false; b.len()];
    let mut total = 0.0;
    for (s, i, j) in pairs {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            total += s;
        }
    }
    total
}

/// Fuzzy Jaccard: `overlap / (|a| + |b| − overlap)` with fuzzy overlap.
///
/// `delta` is the token-level edit-similarity threshold (Fast-Join uses
/// `0.8` in its experiments; the paper's FJ column follows suit).
pub fn fuzzy_jaccard(a: &[&str], b: &[&str], delta: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let o = fuzzy_overlap(a, b, delta);
    let denom = a.len() as f64 + b.len() as f64 - o;
    if denom <= 0.0 {
        1.0
    } else {
        o / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tokens_reduce_to_jaccard() {
        let a = ["new", "york", "university"];
        let b = ["york", "university", "press"];
        // overlap = 2, denom = 3 + 3 - 2 = 4
        assert!((fuzzy_jaccard(&a, &b, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn typo_tokens_match_fuzzily() {
        // paper Figure 8 (DBWorld): "Aukland" vs "Auckland" has ed 1.
        let a = ["the", "university", "of", "aukland"];
        let b = ["the", "university", "of", "auckland"];
        let fj = fuzzy_jaccard(&a, &b, 0.8);
        let j_exact_only = fuzzy_jaccard(&a, &b, 1.0);
        assert!(fj > j_exact_only);
        assert!(fj > 0.9);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(fuzzy_jaccard(&["aaa"], &["zzz"], 0.8), 0.0);
    }

    #[test]
    fn identical_is_one() {
        let a = ["a", "b"];
        assert_eq!(fuzzy_jaccard(&a, &a, 0.8), 1.0);
        assert_eq!(fuzzy_jaccard(&[], &[], 0.8), 1.0);
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // One token in `a` cannot match two tokens in `b`.
        let a = ["abcd"];
        let b = ["abcd", "abcd"];
        let o = fuzzy_overlap(&a, &b, 0.8);
        assert_eq!(o, 1.0);
    }

    #[test]
    fn overlap_bounded_by_min_len() {
        let a = ["aa", "ab", "ac"];
        let b = ["aa", "ab"];
        assert!(fuzzy_overlap(&a, &b, 0.5) <= 2.0 + 1e-12);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(fuzzy_jaccard(&[], &["x"], 0.8), 0.0);
    }
}
