//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) on the synthetic calibrated corpora.
//!
//! ```text
//! experiments <command> [--scale F] [--seed N] [--docs N] [--json PATH]
//!
//! commands:
//!   table1     dataset statistics (paper Table 1)
//!   table2     P/R/F of Jaccard vs Fuzzy Jaccard vs JaccAR (paper Table 2)
//!   fig8       per-pair case study of the three metrics (paper Figure 8)
//!   fig9       end-to-end time: Aeetes vs FaerieR (paper Figure 9)
//!   fig10      filtering ablation: Simple/Skip/Dynamic/Lazy time (Figure 10)
//!   fig11      accessed inverted-index entries per strategy (Figure 11)
//!   fig12      scalability in the number of entities (Figure 12)
//!   indexsize  index memory: Aeetes clustered index vs FaerieR (§6.3)
//!   ablation   derived-dictionary cap sweep (size/time vs recall)
//!   weighted   weighted-rule extension: precision under noisy rules
//!   all        run everything above
//! ```

mod ablation;
mod common;
mod fig10;
mod fig11;
mod fig12;
mod fig8;
mod fig9;
mod indexsize;
mod table1;
mod table2;
mod weighted;

use common::Config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!(
            "usage: experiments <table1|table2|fig8|fig9|fig10|fig11|fig12|indexsize|ablation|weighted|all> \
             [--scale F] [--seed N] [--docs N] [--json PATH]"
        );
        std::process::exit(2);
    };
    let config = match Config::parse(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let run = |name: &str| {
        println!("\n================ {name} ================");
        match name {
            "table1" => table1::run(&config),
            "table2" => table2::run(&config),
            "fig8" => fig8::run(&config),
            "fig9" => fig9::run(&config),
            "fig10" => fig10::run(&config),
            "fig11" => fig11::run(&config),
            "fig12" => fig12::run(&config),
            "indexsize" => indexsize::run(&config),
            "ablation" => ablation::run(&config),
            "weighted" => weighted::run(&config),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    };

    if command == "all" {
        for name in ["table1", "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "indexsize", "ablation", "weighted"] {
            run(name);
        }
    } else {
        run(&command);
    }
    config.flush_json();
}
