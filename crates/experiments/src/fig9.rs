//! Figure 9: end-to-end average extraction time per document,
//! Aeetes vs FaerieR, θ ∈ [0.7, 0.9].

use crate::common::{engine_with_rules, fmt_ms, time_ms_best, Config, TAUS};
use aeetes_baselines::Faerie;
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    tau: f64,
    aeetes_ms_per_doc: f64,
    faerier_ms_per_doc: f64,
    speedup: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>5} {:>10} {:>11} {:>9}", "dataset", "τ", "Aeetes ms", "FaerieR ms", "speedup");
    for data in config.datasets() {
        let engine = engine_with_rules(&data);
        let dd = DerivedDictionary::build(&data.dictionary, &data.rules, &DeriveConfig::default());
        let faerier = Faerie::build_derived(&dd);
        let docs = config.measured_docs(&data);
        for tau in TAUS {
            let a_ms = time_ms_best(3, || {
                for doc in docs {
                    std::hint::black_box(engine.extract(doc, tau));
                }
            }) / docs.len() as f64;
            let f_ms = time_ms_best(2, || {
                for doc in docs {
                    std::hint::black_box(faerier.extract(doc, tau));
                }
            }) / docs.len() as f64;
            println!("{:<10} {:>5.2} {} {} {:>8.1}x", data.name, tau, fmt_ms(a_ms), fmt_ms(f_ms), f_ms / a_ms.max(1e-9));
            config.record(
                "fig9",
                &Row {
                    dataset: data.name.clone(),
                    tau,
                    aeetes_ms_per_doc: a_ms,
                    faerier_ms_per_doc: f_ms,
                    speedup: f_ms / a_ms.max(1e-9),
                },
            );
        }
    }
    println!("\n(expected shape per the paper: Aeetes 1–2 orders of magnitude faster than FaerieR)");
}
