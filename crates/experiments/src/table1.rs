//! Table 1: dataset statistics.

use crate::common::Config;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    docs: usize,
    entities: usize,
    synonyms: usize,
    avg_doc_len: f64,
    avg_entity_len: f64,
    avg_applicable: f64,
    paper_avg_doc_len: f64,
    paper_avg_entity_len: f64,
    paper_avg_applicable: f64,
}

/// Paper Table 1 reference values: (avg |d|, avg |e|, avg |A(e)|).
fn paper_row(name: &str) -> (f64, f64, f64) {
    match name {
        "pubmed" => (187.81, 3.04, 2.42),
        "dbworld" => (795.89, 2.04, 3.24),
        "usjob" => (322.51, 6.92, 22.7),
        _ => (0.0, 0.0, 0.0),
    }
}

pub fn run(config: &Config) {
    println!(
        "{:<10} {:>7} {:>9} {:>9} | {:>9} {:>8} {:>9} | paper: avg|d| avg|e| avg|A(e)|",
        "dataset", "docs", "entities", "synonyms", "avg|d|", "avg|e|", "avg|A(e)|"
    );
    for data in config.datasets() {
        let s = data.statistics(2_000);
        let (pd, pe, pa) = paper_row(&s.name);
        println!(
            "{:<10} {:>7} {:>9} {:>9} | {:>9.2} {:>8.2} {:>9.2} |        {:>6.1} {:>6.2} {:>9.2}",
            s.name, s.docs, s.entities, s.synonyms, s.avg_doc_len, s.avg_entity_len, s.avg_applicable, pd, pe, pa
        );
        config.record(
            "table1",
            &Row {
                dataset: s.name.clone(),
                docs: s.docs,
                entities: s.entities,
                synonyms: s.synonyms,
                avg_doc_len: s.avg_doc_len,
                avg_entity_len: s.avg_entity_len,
                avg_applicable: s.avg_applicable,
                paper_avg_doc_len: pd,
                paper_avg_entity_len: pe,
                paper_avg_applicable: pa,
            },
        );
    }
    println!("\n(sizes are scaled by --scale {}; per-item statistics target the paper's values)", config.scale);
}
