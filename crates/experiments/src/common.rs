//! Shared plumbing: CLI options, dataset cache, timing and result output.

use aeetes_core::{suppress_overlaps, Aeetes, AeetesConfig, Match, Strategy};
use aeetes_datagen::{generate, Dataset, DatasetProfile};
use aeetes_rules::RuleSet;
use aeetes_sim::fuzzy_jaccard;
use aeetes_text::{Document, Interner};
use parking_lot::Mutex;
use serde::Serialize;
use std::time::Instant;

/// Harness configuration (CLI flags).
#[derive(Debug)]
pub struct Config {
    /// Size multiplier applied to every profile (paper-scale = 1.0).
    pub scale: f64,
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// Cap on documents measured per dataset (0 = all generated docs).
    pub docs: usize,
    /// Optional JSON output path; rows from all experiments accumulate.
    pub json_path: Option<String>,
    rows: Mutex<Vec<serde_json::Value>>,
}

impl Config {
    /// Parses `--scale F --seed N --docs N --json PATH` style flags.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut c = Self { scale: 0.1, seed: 42, docs: 0, json_path: None, rows: Mutex::new(Vec::new()) };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().map(|s| s.to_string()).ok_or_else(|| format!("flag {name} needs a value"));
            match flag.as_str() {
                "--scale" => c.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--seed" => c.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--docs" => c.docs = value("--docs")?.parse().map_err(|e| format!("--docs: {e}"))?,
                "--json" => c.json_path = Some(value("--json")?),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if c.scale <= 0.0 || c.scale.is_nan() {
            return Err("--scale must be positive".into());
        }
        Ok(c)
    }

    /// The three paper datasets at the configured scale, generated in
    /// parallel (generation is deterministic per profile + seed).
    pub fn datasets(&self) -> Vec<Dataset> {
        let profiles: Vec<DatasetProfile> = DatasetProfile::all().into_iter().map(|p| p.scaled(self.scale)).collect();
        let out = Mutex::new(Vec::with_capacity(profiles.len()));
        crossbeam::scope(|s| {
            for (i, p) in profiles.iter().enumerate() {
                let out = &out;
                let seed = self.seed;
                s.spawn(move |_| {
                    let d = generate(p, seed);
                    out.lock().push((i, d));
                });
            }
        })
        .expect("generation threads");
        let mut v = out.into_inner();
        v.sort_by_key(|(i, _)| *i);
        v.into_iter().map(|(_, d)| d).collect()
    }

    /// The documents of `data` to measure (honours `--docs`).
    pub fn measured_docs<'a>(&self, data: &'a Dataset) -> &'a [Document] {
        let n = if self.docs == 0 {
            data.documents.len()
        } else {
            self.docs.min(data.documents.len())
        };
        &data.documents[..n]
    }

    /// Records a machine-readable result row.
    pub fn record<T: Serialize>(&self, experiment: &str, row: &T) {
        let mut v = serde_json::to_value(row).expect("serializable row");
        if let serde_json::Value::Object(m) = &mut v {
            m.insert("experiment".into(), serde_json::Value::String(experiment.into()));
        }
        self.rows.lock().push(v);
    }

    /// Writes accumulated rows to the `--json` path, if any.
    pub fn flush_json(&self) {
        let Some(path) = &self.json_path else { return };
        let rows = self.rows.lock();
        let body = serde_json::to_string_pretty(&*rows).expect("serializable rows");
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("\n[wrote {} result rows to {path}]", rows.len());
        }
    }
}

/// The thresholds of the paper's efficiency sweeps (Figures 9–11).
pub const TAUS: [f64; 5] = [0.7, 0.75, 0.8, 0.85, 0.9];

/// Milliseconds spent in `f`.
pub fn time_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`reps` milliseconds for `f` (min over repetitions removes
/// allocator/scheduler noise from the small harness runs; criterion is used
/// for statistically rigorous numbers).
pub fn time_ms_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| time_ms(&mut f)).fold(f64::INFINITY, f64::min)
}

/// Builds the synonym-aware engine for a dataset.
pub fn engine_with_rules(data: &Dataset) -> Aeetes {
    Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default())
}

/// Builds the rule-less engine (plain syntactic Jaccard extraction).
pub fn engine_without_rules(data: &Dataset) -> Aeetes {
    Aeetes::build(data.dictionary.clone(), &RuleSet::new(), &data.interner, AeetesConfig::default())
}

/// Fuzzy-Jaccard extraction used by the Table 2 baseline: generate
/// candidates with the rule-less engine at a relaxed threshold, then
/// re-verify every candidate span with token-level Fuzzy Jaccard against
/// its origin entity (Fast-Join's metric, δ = 0.8).
pub fn fj_extract(engine: &Aeetes, doc: &Document, interner: &Interner, tau: f64) -> Vec<Match> {
    let relaxed = (tau * 0.6).max(0.30);
    let candidates = engine.extract(doc, relaxed);
    let mut out = Vec::new();
    for mut m in candidates {
        let ent: Vec<&str> = engine.dictionary().entity(m.entity).iter().map(|&t| interner.resolve(t)).collect();
        let sub: Vec<&str> = doc.slice(m.span).iter().map(|&t| interner.resolve(t)).collect();
        let score = fuzzy_jaccard(&ent, &sub, 0.8);
        if score >= tau {
            m.score = score;
            out.push(m);
        }
    }
    suppress_overlaps(out)
}

/// Precision / recall / F1 of retrieved `(entity, span)` pairs against the
/// gold mentions of one document.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct PrfCounts {
    /// True positives.
    pub tp: usize,
    /// Retrieved pairs that match no gold mention.
    pub fp: usize,
    /// Gold mentions never retrieved.
    pub fn_: usize,
}

impl PrfCounts {
    /// Accumulates one document's retrieval against its gold.
    pub fn tally(&mut self, retrieved: &[Match], gold: &[(aeetes_text::EntityId, aeetes_text::Span)]) {
        for m in retrieved {
            if gold.iter().any(|(e, s)| *e == m.entity && *s == m.span) {
                self.tp += 1;
            } else {
                self.fp += 1;
            }
        }
        for (e, s) in gold {
            if !retrieved.iter().any(|m| m.entity == *e && m.span == *s) {
                self.fn_ += 1;
            }
        }
    }

    /// Precision.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F-measure.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Extraction wrapped with overlap suppression (the evaluation protocol for
/// effectiveness experiments; see DESIGN.md).
pub fn extract_best(engine: &Aeetes, doc: &Document, tau: f64) -> Vec<Match> {
    suppress_overlaps(engine.extract(doc, tau))
}

/// Pretty milliseconds.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:8.1}")
    } else {
        format!("{ms:8.3}")
    }
}

/// The per-strategy list in the paper's ablation order.
pub const STRATEGIES: [Strategy; 4] = Strategy::ALL;
