//! Figure 10: effect of the filtering techniques — average extraction time
//! per document for Simple / Skip / Dynamic / Lazy.

use crate::common::{engine_with_rules, fmt_ms, time_ms_best, Config, STRATEGIES, TAUS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    tau: f64,
    strategy: String,
    ms_per_doc: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>5} {:>10} {:>10} {:>10} {:>10}", "dataset", "τ", "Simple", "Skip", "Dynamic", "Lazy");
    for data in config.datasets() {
        let engine = engine_with_rules(&data);
        let docs = config.measured_docs(&data);
        for tau in TAUS {
            let mut cells = Vec::with_capacity(STRATEGIES.len());
            for strategy in STRATEGIES {
                let ms = time_ms_best(3, || {
                    for doc in docs {
                        std::hint::black_box(engine.extract_with(doc, tau, strategy));
                    }
                }) / docs.len() as f64;
                cells.push(ms);
                config.record(
                    "fig10",
                    &Row {
                        dataset: data.name.clone(),
                        tau,
                        strategy: strategy.name().into(),
                        ms_per_doc: ms,
                    },
                );
            }
            println!("{:<10} {:>5.2} {} {} {} {}", data.name, tau, fmt_ms(cells[0]), fmt_ms(cells[1]), fmt_ms(cells[2]), fmt_ms(cells[3]));
        }
    }
    println!("\n(expected shape per the paper: Lazy < Dynamic < Skip < Simple)");
}
