//! Ablation: the derived-dictionary cap (`DeriveConfig::max_derived`).
//!
//! The paper's `|D(e)| = O(2^n)` blow-up (§2.1) is unbounded; our engine
//! caps enumeration per entity. This sweep shows the trade-off the cap
//! buys: derived-dictionary size, index size and extraction time against
//! the recall of exact+synonym gold mentions.

use crate::common::{time_ms_best, Config};
use aeetes_core::{suppress_overlaps, Aeetes, AeetesConfig};
use aeetes_datagen::{generate, DatasetProfile, MentionForm};
use aeetes_rules::DeriveConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    max_derived: usize,
    derived: usize,
    truncated_entities: usize,
    index_mb: f64,
    build_ms: f64,
    extract_ms_per_doc: f64,
    gold_recall: f64,
}

const CAPS: [usize; 5] = [8, 32, 128, 256, 1024];

pub fn run(config: &Config) {
    println!(
        "{:<10} {:>8} {:>9} {:>10} {:>9} {:>9} {:>10} {:>8}",
        "dataset", "cap", "derived", "truncated", "index MB", "build ms", "ms/doc", "recall"
    );
    // usjob is where the cap bites (avg |A(e)| ≈ 22.7).
    for profile in [DatasetProfile::usjob_like(), DatasetProfile::pubmed_like()] {
        let data = generate(&profile.scaled(config.scale), config.seed);
        let docs = config.measured_docs(&data);
        for cap in CAPS {
            let cfg = AeetesConfig {
                derive: DeriveConfig { max_derived: cap, ..DeriveConfig::default() },
                ..AeetesConfig::default()
            };
            let mut engine: Option<Aeetes> = None;
            let build_ms = time_ms_best(1, || {
                engine = Some(Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, cfg.clone()));
            });
            let engine = engine.expect("built");
            let tau = 0.8;
            let extract_ms = time_ms_best(2, || {
                for doc in docs {
                    std::hint::black_box(engine.extract(doc, tau));
                }
            }) / docs.len() as f64;
            // Recall of exact+synonym gold at τ=0.8 under this cap.
            let mut hit = 0usize;
            let mut total = 0usize;
            for (doc_id, doc) in docs.iter().enumerate() {
                let best = suppress_overlaps(engine.extract(doc, tau));
                for g in data.gold_for(doc_id) {
                    if matches!(g.form, MentionForm::Exact | MentionForm::Synonym) {
                        total += 1;
                        if best.iter().any(|m| m.entity == g.entity && m.span == g.span) {
                            hit += 1;
                        }
                    }
                }
            }
            let recall = if total == 0 { 0.0 } else { hit as f64 / total as f64 };
            let st = engine.derived().stats();
            let index_mb = engine.index().size_bytes() as f64 / (1024.0 * 1024.0);
            println!(
                "{:<10} {:>8} {:>9} {:>10} {:>9.2} {:>9.1} {:>10.3} {:>8.3}",
                data.name,
                cap,
                engine.derived().len(),
                st.truncated_entities,
                index_mb,
                build_ms,
                extract_ms,
                recall
            );
            config.record(
                "ablation",
                &Row {
                    dataset: data.name.clone(),
                    max_derived: cap,
                    derived: engine.derived().len(),
                    truncated_entities: st.truncated_entities,
                    index_mb,
                    build_ms,
                    extract_ms_per_doc: extract_ms,
                    gold_recall: recall,
                },
            );
        }
    }
    println!("\n(the cap trades derived-dictionary size and extraction time against synonym-mention recall)");
}
