//! Figure 12: scalability — average extraction time per document while the
//! number of dictionary entities grows, for θ ∈ {0.7 … 0.9}.

use crate::common::{engine_with_rules, time_ms_best, Config};
use aeetes_datagen::{generate, DatasetProfile};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    entities: usize,
    tau: f64,
    ms_per_doc: f64,
}

/// Entity-count steps, as fractions of the profile's (scaled) entity count —
/// the paper sweeps five steps up to the full dictionary.
const STEPS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
const TAUS: [f64; 5] = [0.7, 0.75, 0.8, 0.85, 0.9];

pub fn run(config: &Config) {
    println!("{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}", "dataset", "entities", "τ=0.70", "τ=0.75", "τ=0.80", "τ=0.85", "τ=0.90");
    for base in DatasetProfile::all() {
        let base = base.scaled(config.scale);
        for step in STEPS {
            let entities = ((base.entities as f64 * step).round() as usize).max(1);
            let profile = base.clone().with_entities(entities);
            let data = generate(&profile, config.seed);
            let engine = engine_with_rules(&data);
            let docs = config.measured_docs(&data);
            let mut cells = Vec::with_capacity(TAUS.len());
            for tau in TAUS {
                let ms = time_ms_best(3, || {
                    for doc in docs {
                        std::hint::black_box(engine.extract(doc, tau));
                    }
                }) / docs.len() as f64;
                cells.push(ms);
                config.record("fig12", &Row { dataset: data.name.clone(), entities, tau, ms_per_doc: ms });
            }
            println!(
                "{:<10} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                data.name, entities, cells[0], cells[1], cells[2], cells[3], cells[4]
            );
        }
    }
    println!("\n(expected shape per the paper: near-linear growth with the number of entities)");
}
