//! Weighted-rule extension evaluation (§8 future work): when the rule table
//! contains low-confidence (noisy) rules, weighted JaccAR suppresses the
//! false positives they create while plain JaccAR swallows them.
//!
//! Protocol: take a calibrated corpus, then inject bogus rules — each maps
//! a frequent dictionary token to a random *other* entity's token sequence,
//! manufacturing spurious derived variants — at a low confidence weight.
//! Plain extraction treats every rule as fully trusted; weighted extraction
//! scales scores by the rule-weight product, pushing bogus-variant matches
//! below τ.

use crate::common::{Config, PrfCounts};
use aeetes_core::{suppress_overlaps, Aeetes, AeetesConfig};
use aeetes_datagen::{generate, DatasetProfile};
use aeetes_rules::RuleSet;
use aeetes_text::EntityId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    bogus_rules: usize,
    mode: &'static str,
    precision: f64,
    recall: f64,
    f1: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>7} | {:>26} | {:>26}", "dataset", "bogus", "plain JaccAR (P/R/F)", "weighted JaccAR (P/R/F)");
    let tau = 0.8;
    for profile in [DatasetProfile::pubmed_like(), DatasetProfile::usjob_like()] {
        let data = generate(&profile.scaled(config.scale), config.seed);
        let docs = config.measured_docs(&data);
        for bogus in [0usize, 200, 1000] {
            // Rebuild the rule set: all genuine rules at weight 1.0 plus
            // `bogus` low-confidence noise rules.
            let mut rules = RuleSet::new();
            for (_, r) in data.rules.iter() {
                let _ = rules.push_tokens(r.lhs.clone(), r.rhs.clone(), 1.0);
            }
            let mut injected = 0usize;
            let mut cursor = 0usize;
            while injected < bogus && cursor < data.dictionary.len() * 4 {
                // Deterministic "noise": map entity i's first token to
                // entity (i + stride)'s token sequence.
                let src = EntityId((cursor % data.dictionary.len()) as u32);
                let dst = EntityId(((cursor * 7 + 13) % data.dictionary.len()) as u32);
                cursor += 1;
                let (Some(&head), target) = (data.dictionary.entity(src).first(), data.dictionary.entity(dst)) else {
                    continue;
                };
                if target.is_empty() || target.contains(&head) {
                    continue;
                }
                if rules.push_tokens(vec![head], target.to_vec(), 0.5).is_ok() {
                    injected += 1;
                }
            }
            let engine = Aeetes::build(data.dictionary.clone(), &rules, &data.interner, AeetesConfig::default());
            let mut plain = PrfCounts::default();
            let mut weighted = PrfCounts::default();
            for (doc_id, doc) in docs.iter().enumerate() {
                let gold: Vec<_> = data.gold_for(doc_id).map(|g| (g.entity, g.span)).collect();
                plain.tally(&suppress_overlaps(engine.extract(doc, tau)), &gold);
                weighted.tally(&suppress_overlaps(engine.extract_weighted(doc, tau).0), &gold);
            }
            let fmt = |c: &PrfCounts| format!("{:6.3} {:6.3} {:6.3}", c.precision(), c.recall(), c.f1());
            println!("{:<10} {:>7} | {:>26} | {:>26}", data.name, injected, fmt(&plain), fmt(&weighted));
            for (mode, c) in [("plain", &plain), ("weighted", &weighted)] {
                config.record(
                    "weighted",
                    &Row {
                        dataset: data.name.clone(),
                        bogus_rules: injected,
                        mode,
                        precision: c.precision(),
                        recall: c.recall(),
                        f1: c.f1(),
                    },
                );
            }
        }
    }
    println!("\n(weighted extraction should hold precision as noisy rules are injected; plain JaccAR degrades)");
}
