//! Table 2: effectiveness (P/R/F) of Jaccard vs Fuzzy Jaccard vs JaccAR at
//! θ ∈ {0.7, 0.8, 0.9}.

use crate::common::{engine_with_rules, engine_without_rules, extract_best, fj_extract, Config, PrfCounts};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    theta: f64,
    metric: &'static str,
    precision: f64,
    recall: f64,
    f1: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>5} | {:>24} | {:>24} | {:>24}", "dataset", "θ", "Jaccard (P/R/F)", "Fuzzy Jaccard (P/R/F)", "JaccAR (P/R/F)");
    for data in config.datasets() {
        let with_rules = engine_with_rules(&data);
        let without_rules = engine_without_rules(&data);
        let docs = config.measured_docs(&data);
        for theta in [0.7, 0.8, 0.9] {
            let mut counts = [PrfCounts::default(); 3]; // jaccard, fj, jaccar
            for (doc_id, doc) in docs.iter().enumerate() {
                let gold: Vec<_> = data.gold_for(doc_id).map(|g| (g.entity, g.span)).collect();
                counts[0].tally(&extract_best(&without_rules, doc, theta), &gold);
                counts[1].tally(&fj_extract(&without_rules, doc, &data.interner, theta), &gold);
                counts[2].tally(&extract_best(&with_rules, doc, theta), &gold);
            }
            let fmt = |c: &PrfCounts| format!("{:5.2} {:5.2} {:5.2}", c.precision(), c.recall(), c.f1());
            println!("{:<10} {:>5.1} | {:>24} | {:>24} | {:>24}", data.name, theta, fmt(&counts[0]), fmt(&counts[1]), fmt(&counts[2]));
            for (metric, c) in ["jaccard", "fuzzy_jaccard", "jaccar"].iter().zip(&counts) {
                config.record(
                    "table2",
                    &Row {
                        dataset: data.name.clone(),
                        theta,
                        metric,
                        precision: c.precision(),
                        recall: c.recall(),
                        f1: c.f1(),
                    },
                );
            }
        }
    }
    println!("\n(expected shape per the paper: JaccAR dominates F-measure; FJ beats Jaccard on typo'd mentions)");
}
