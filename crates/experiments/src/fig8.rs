//! Figure 8: case study — per-pair scores of the three metrics on sample
//! ground-truth pairs of each dataset.

use crate::common::Config;
use aeetes_datagen::MentionForm;
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use aeetes_sim::{fuzzy_jaccard, jaccard, sorted_set, JaccArVerifier};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    form: String,
    jaccard: f64,
    fuzzy_jaccard: f64,
    jaccar: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:<9} {:>9} {:>9} {:>9}", "dataset", "form", "Jaccard", "FJ", "JaccAR");
    for data in config.datasets() {
        let dd = DerivedDictionary::build(&data.dictionary, &data.rules, &DeriveConfig::default());
        let verifier = JaccArVerifier::new(&dd);
        for form in [MentionForm::Exact, MentionForm::Synonym, MentionForm::Noisy, MentionForm::Typo] {
            let Some(g) = data.gold.iter().find(|g| g.form == form) else { continue };
            let sub_tokens = data.documents[g.doc].slice(g.span);
            let ent_tokens = data.dictionary.entity(g.entity);
            let j = jaccard(&sorted_set(ent_tokens), &sorted_set(sub_tokens));
            let ent_strs: Vec<&str> = ent_tokens.iter().map(|&t| data.interner.resolve(t)).collect();
            let sub_strs: Vec<&str> = sub_tokens.iter().map(|&t| data.interner.resolve(t)).collect();
            let fj = fuzzy_jaccard(&ent_strs, &sub_strs, 0.8);
            let ar = verifier.verify(g.entity, &sorted_set(sub_tokens), 0.0).value;
            println!("{:<10} {:<9} {:>9.3} {:>9.3} {:>9.3}", data.name, format!("{form:?}"), j, fj, ar);
            config.record(
                "fig8",
                &Row {
                    dataset: data.name.clone(),
                    form: format!("{form:?}"),
                    jaccard: j,
                    fuzzy_jaccard: fj,
                    jaccar: ar,
                },
            );
        }
    }
    println!("\n(per the paper: JaccAR = 1.0 on synonym pairs where Jaccard/FJ stay low; FJ > Jaccard on typos)");
}
