//! Figure 11: effect of the filtering techniques — average number of
//! accessed inverted-index entries per document.

use crate::common::{engine_with_rules, Config, STRATEGIES, TAUS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    tau: f64,
    strategy: String,
    accessed_entries_per_doc: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>5} {:>12} {:>12} {:>12} {:>12}", "dataset", "τ", "Simple", "Skip", "Dynamic", "Lazy");
    for data in config.datasets() {
        let engine = engine_with_rules(&data);
        let docs = config.measured_docs(&data);
        for tau in TAUS {
            let mut cells = Vec::with_capacity(STRATEGIES.len());
            for strategy in STRATEGIES {
                let mut accessed = 0u64;
                for doc in docs {
                    let (_, stats) = engine.extract_with(doc, tau, strategy);
                    accessed += stats.accessed_entries;
                }
                let avg = accessed as f64 / docs.len() as f64;
                cells.push(avg);
                config.record(
                    "fig11",
                    &Row {
                        dataset: data.name.clone(),
                        tau,
                        strategy: strategy.name().into(),
                        accessed_entries_per_doc: avg,
                    },
                );
            }
            println!("{:<10} {:>5.2} {:>12.0} {:>12.0} {:>12.0} {:>12.0}", data.name, tau, cells[0], cells[1], cells[2], cells[3]);
        }
    }
    println!("\n(expected shape per the paper: Lazy ≪ Dynamic ≪ Skip ≪ Simple — e.g. PubMed θ=0.8: 326631 / 126895 / 16002 / 6120)");
}
