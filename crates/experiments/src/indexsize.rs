//! §6.3 memory note: index size of Aeetes' clustered inverted index versus
//! FaerieR's flat inverted index.

use crate::common::{engine_with_rules, Config};
use aeetes_baselines::Faerie;
use aeetes_rules::{DeriveConfig, DerivedDictionary};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    aeetes_bytes: usize,
    faerier_bytes: usize,
    ratio: f64,
}

pub fn run(config: &Config) {
    println!("{:<10} {:>14} {:>14} {:>7}", "dataset", "Aeetes (MB)", "FaerieR (MB)", "ratio");
    for data in config.datasets() {
        let engine = engine_with_rules(&data);
        let dd = DerivedDictionary::build(&data.dictionary, &data.rules, &DeriveConfig::default());
        let faerier = Faerie::build_derived(&dd);
        let a = engine.index().size_bytes();
        let f = faerier.size_bytes();
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        println!("{:<10} {:>14.2} {:>14.2} {:>6.2}x", data.name, mb(a), mb(f), a as f64 / f.max(1) as f64);
        config.record(
            "indexsize",
            &Row {
                dataset: data.name.clone(),
                aeetes_bytes: a,
                faerier_bytes: f,
                ratio: a as f64 / f.max(1) as f64,
            },
        );
    }
    println!("\n(the paper reports the clustered index ≈ 2× the FaerieR index; the speed win pays for it)");
}
