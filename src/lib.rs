//! # Aeetes — Approximate Entity Extraction with Synonyms
//!
//! A Rust implementation of *"An Efficient Sliding Window Approach for
//! Approximate Entity Extraction with Synonyms"* (Wang, Lin, Li, Zaniolo —
//! EDBT 2019).
//!
//! Given a dictionary of entities, a table of synonym rules
//! (`lhs ⇔ rhs`) and a similarity threshold τ, Aeetes finds every document
//! substring whose **Asymmetric Rule-based Jaccard** (JaccAR) similarity to
//! some entity reaches τ — catching mentions that are syntactically
//! different but semantically equal ("Big Apple" ↔ "New York").
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`text`] | interner, tokenizer, dictionary, documents |
//! | [`rules`] | synonym rules, conflict resolution, derived dictionary |
//! | [`sim`] | Jaccard family, edit distance, Fuzzy Jaccard, JaccAR verify |
//! | [`index`] | global token order, filters, clustered inverted index |
//! | [`core`] | the extraction engine and its four filtering strategies |
//! | [`pool`] | persistent work-stealing executor, parallel batch extraction |
//! | [`stream`] | chunk-fed incremental extraction with exactly-once emission |
//! | [`obs`] | metric registry, stage timing, Prometheus/JSON exporters |
//! | [`baselines`] | exact matching, Faerie, FaerieR |
//! | [`datagen`] | synthetic corpora calibrated to the paper's datasets |
//!
//! The most common types are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use aeetes::{Aeetes, AeetesConfig, Dictionary, Document, Interner, RuleSet, Tokenizer};
//!
//! let mut interner = Interner::new();
//! let tokenizer = Tokenizer::default();
//!
//! // 1. The reference entity table.
//! let mut dict = Dictionary::new();
//! dict.push("Massachusetts Institute of Technology", &tokenizer, &mut interner);
//!
//! // 2. Synonym rules.
//! let mut rules = RuleSet::new();
//! rules.push_str("MIT", "Massachusetts Institute of Technology", &tokenizer, &mut interner)
//!     .unwrap();
//!
//! // 3. Off-line preprocessing: derived dictionary + clustered index.
//! let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
//!
//! // 4. On-line extraction.
//! let doc = Document::parse("She got her PhD from MIT in 2016.", &tokenizer, &mut interner);
//! let matches = engine.extract(&doc, 0.9);
//! assert_eq!(matches.len(), 1);
//! assert_eq!(doc.text_of(matches[0].span), Some("MIT"));
//! ```

pub use aeetes_baselines as baselines;
pub use aeetes_cluster as cluster;
pub use aeetes_core as core;
pub use aeetes_datagen as datagen;
pub use aeetes_index as index;
pub use aeetes_obs as obs;
pub use aeetes_pool as pool;
pub use aeetes_rules as rules;
pub use aeetes_shard as shard;
pub use aeetes_sim as sim;
pub use aeetes_stream as stream;
pub use aeetes_text as text;

pub use aeetes_cluster::{run_fleet, FleetOptions, FleetSummary, ReplicaSpec};
pub use aeetes_core::{
    extract_fuzzy, extract_top_k, extract_top_k_with, load_engine, mention_report, save_engine, select_top_k, suppress_overlaps, Aeetes,
    AeetesConfig, EditIndex, EditMatch, ExtractStats, FuzzyConfig, Match, MentionReport, PersistError, Strategy,
};
pub use aeetes_pool::{extract_batch, extract_batch_with, Pool};
pub use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
pub use aeetes_shard::{ActivateError, DictDelta, RuleDelta, ShardedEngine};
pub use aeetes_sim::Metric;
pub use aeetes_stream::{StreamExtractor, StreamMatch};
pub use aeetes_text::{Dictionary, Document, EntityId, Interner, Span, TokenId, Tokenizer};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::AeetesConfig::default();
        let _ = crate::Strategy::ALL;
    }
}
