//! Property-based oracle for the edit-distance extension (future-work ii):
//! q-gram-filtered extraction must coincide with brute-force
//! `ED-AR(e, s) = min over variants of ed(variant string, window string)`.

use aeetes::core::EditIndex;
use aeetes::rules::{DerivedId, RuleSet};
use aeetes::sim::levenshtein;
use aeetes::text::{Dictionary, Document, EntityId, Interner, Tokenizer};
use aeetes::{Aeetes, AeetesConfig};
use proptest::prelude::*;

/// Short words over a tiny alphabet so typos and overlaps are frequent.
fn word() -> impl Strategy<Value = String> {
    "[ab]{1,4}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edit_extraction_matches_brute_force(
        entities in proptest::collection::vec(proptest::collection::vec(word(), 1..3), 1..4),
        rule_pairs in proptest::collection::vec((word(), word()), 0..3),
        doc_words in proptest::collection::vec(word(), 0..12),
        k in 0usize..3,
        q in 2usize..4,
    ) {
        let mut interner = Interner::new();
        let tokenizer = Tokenizer::default();
        let mut dict = Dictionary::new();
        for e in &entities {
            dict.push(&e.join(" "), &tokenizer, &mut interner);
        }
        let mut rules = RuleSet::new();
        for (l, r) in &rule_pairs {
            let _ = rules.push_str(l, r, &tokenizer, &mut interner);
        }
        let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
        let doc = Document::parse(&doc_words.join(" "), &tokenizer, &mut interner);
        let index = EditIndex::build(&engine, &interner, q);
        let got: Vec<(u32, u32, u32, usize)> = index
            .extract(&engine, &doc, &interner, k)
            .into_iter()
            .map(|m| (m.span.start, m.span.len, m.entity.0, m.distance))
            .collect();

        // Brute force over the same token-window range.
        let dd = engine.derived();
        let max_tokens = dd.iter().map(|(_, d)| d.tokens.len()).max().unwrap_or(0);
        let mut expected: Vec<(u32, u32, u32, usize)> = Vec::new();
        if max_tokens > 0 {
            for p in 0..doc.len() {
                for l in 1..=(max_tokens + k).min(doc.len() - p) {
                    let s = interner.render(&doc.tokens()[p..p + l]);
                    for e in 0..dd.origins() {
                        let e = EntityId(e as u32);
                        let mut min_d = usize::MAX;
                        for id in dd.variant_range(e) {
                            let v = interner.render(dd.derived(DerivedId(id)).tokens);
                            min_d = min_d.min(levenshtein(&v, &s));
                        }
                        if min_d <= k {
                            expected.push((p as u32, l as u32, e.0, min_d));
                        }
                    }
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "k={} q={}", k, q);
    }
}
