//! Property-based oracle for the generalized-metric extension (§2.2):
//! extraction under Dice / Cosine / Overlap must coincide with brute-force
//! enumeration of the rule-based metric
//! `max over variants of metric(variant set, substring set)`.

use aeetes::rules::{DeriveConfig, DerivedDictionary, RuleSet};
use aeetes::sim::{sorted_set, Metric};
use aeetes::text::{Dictionary, Document, Interner, TokenId};
use aeetes::{Aeetes, AeetesConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    entities: Vec<Vec<u8>>,
    rules: Vec<(Vec<u8>, Vec<u8>)>,
    doc: Vec<u8>,
    tau_percent: u8,
}

fn instance() -> impl Strategy<Value = Instance> {
    let tok = 0u8..10;
    let seq = |lo: usize, hi: usize| proptest::collection::vec(tok.clone(), lo..=hi);
    (
        proptest::collection::vec(seq(1, 4), 1..5),
        proptest::collection::vec((seq(1, 2), seq(1, 2)), 0..3),
        seq(0, 20),
        70u8..=95,
    )
        .prop_map(|(entities, rules, doc, tau_percent)| Instance { entities, rules, doc, tau_percent })
}

fn materialize(inst: &Instance) -> (Dictionary, RuleSet, Document, f64, Interner) {
    let mut interner = Interner::new();
    let ids: Vec<TokenId> = (0..10).map(|i| interner.intern(&format!("tok{i}"))).collect();
    let mut dict = Dictionary::new();
    for e in &inst.entities {
        let tokens: Vec<TokenId> = e.iter().map(|&i| ids[i as usize]).collect();
        dict.push_tokens(format!("{e:?}"), tokens);
    }
    let mut rules = RuleSet::new();
    for (l, r) in &inst.rules {
        let lt: Vec<TokenId> = l.iter().map(|&i| ids[i as usize]).collect();
        let rt: Vec<TokenId> = r.iter().map(|&i| ids[i as usize]).collect();
        let _ = rules.push_tokens(lt, rt, 1.0);
    }
    let doc = Document::from_tokens(inst.doc.iter().map(|&i| ids[i as usize]).collect());
    (dict, rules, doc, inst.tau_percent as f64 / 100.0, interner)
}

/// Brute-force rule-based metric over the engine's own window-length range.
fn brute_force(dict: &Dictionary, dd: &DerivedDictionary, doc: &Document, tau: f64, metric: Metric) -> Vec<(u32, u32, u32, f64)> {
    let variant_sets: Vec<Vec<TokenId>> = dd.iter().map(|(_, d)| sorted_set(d.tokens)).collect();
    let lens: Vec<usize> = variant_sets.iter().map(Vec::len).filter(|&l| l > 0).collect();
    let (Some(&min_le), Some(&max_le)) = (lens.iter().min(), lens.iter().max()) else {
        return Vec::new();
    };
    // Mirror aeetes_index::metric_window_bounds.
    let cap = (max_le as f64 / tau - 1e-9).ceil() as usize;
    let w_lo = metric.length_bounds(min_le, tau, cap).0;
    let w_hi = metric.length_bounds(max_le, tau, cap).1;
    let n = doc.len();
    let mut out = Vec::new();
    for p in 0..n {
        for l in w_lo..=w_hi.min(n - p) {
            let s = sorted_set(&doc.tokens()[p..p + l]);
            for (e, _) in dict.iter() {
                let mut best = 0.0f64;
                for id in dd.variant_range(e) {
                    let v = &variant_sets[id as usize];
                    let inter = v.iter().filter(|t| s.binary_search(t).is_ok()).count();
                    let score = metric.score(v.len(), s.len(), inter);
                    if score > best {
                        best = score;
                    }
                }
                if best >= tau {
                    out.push((p as u32, l as u32, e.0, best));
                }
            }
        }
    }
    out.sort_by_key(|r| (r.0, r.1, r.2));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_metrics_match_brute_force(inst in instance()) {
        let (dict, rules, doc, tau, _int) = materialize(&inst);
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        let engine = Aeetes::build(dict.clone(), &rules, &_int, AeetesConfig::default());
        for metric in Metric::ALL {
            let expected = brute_force(&dict, &dd, &doc, tau, metric);
            let got: Vec<(u32, u32, u32, f64)> = engine
                .extract_with_metric(&doc, tau, metric)
                .0
                .into_iter()
                .map(|m| (m.span.start, m.span.len, m.entity.0, m.score))
                .collect();
            prop_assert_eq!(got.len(), expected.len(), "{} tau {}: {:?} vs {:?}", metric, tau, got, expected);
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!((g.0, g.1, g.2), (e.0, e.1, e.2), "{}", metric);
                prop_assert!((g.3 - e.3).abs() < 1e-12, "{}: score {} vs {}", metric, g.3, e.3);
            }
        }
    }
}
