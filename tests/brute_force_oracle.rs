//! Property-based oracle test: on small random instances, the engine's
//! output must coincide with a brute-force evaluation of Definition 2.2 —
//! every substring of every admissible token length scored against every
//! entity with the exact JaccAR of Definition 2.1.

use aeetes::rules::{DeriveConfig, DerivedDictionary, RuleSet};
use aeetes::sim::{sorted_set, JaccArVerifier};
use aeetes::text::{Dictionary, Document, Interner, TokenId};
use aeetes::{Aeetes, AeetesConfig, Strategy as ExtractStrategy};
use proptest::prelude::*;

/// A compact instance description drawn by proptest.
#[derive(Debug, Clone)]
struct Instance {
    entities: Vec<Vec<u8>>,
    rules: Vec<(Vec<u8>, Vec<u8>)>,
    doc: Vec<u8>,
    tau_percent: u8,
}

fn instance() -> impl Strategy<Value = Instance> {
    // Token alphabet of 12 symbols keeps collisions (and thus interesting
    // matches) frequent.
    let tok = 0u8..12;
    let seq = |lo: usize, hi: usize| proptest::collection::vec(tok.clone(), lo..=hi);
    (
        proptest::collection::vec(seq(1, 4), 1..6),
        proptest::collection::vec((seq(1, 2), seq(1, 3)), 0..4),
        seq(0, 24),
        70u8..=95,
    )
        .prop_map(|(entities, rules, doc, tau_percent)| Instance { entities, rules, doc, tau_percent })
}

fn materialize(inst: &Instance) -> (Dictionary, RuleSet, Document, f64, Interner) {
    let mut interner = Interner::new();
    let ids: Vec<TokenId> = (0..12).map(|i| interner.intern(&format!("tok{i}"))).collect();
    let mut dict = Dictionary::new();
    for e in &inst.entities {
        let tokens: Vec<TokenId> = e.iter().map(|&i| ids[i as usize]).collect();
        dict.push_tokens(format!("{e:?}"), tokens);
    }
    let mut rules = RuleSet::new();
    for (l, r) in &inst.rules {
        let lt: Vec<TokenId> = l.iter().map(|&i| ids[i as usize]).collect();
        let rt: Vec<TokenId> = r.iter().map(|&i| ids[i as usize]).collect();
        let _ = rules.push_tokens(lt, rt, 1.0); // trivial rules rejected, fine
    }
    let doc = Document::from_tokens(inst.doc.iter().map(|&i| ids[i as usize]).collect());
    (dict, rules, doc, inst.tau_percent as f64 / 100.0, interner)
}

/// Brute force: enumerate every substring whose token length lies in the
/// engine's window bounds and score it against every entity.
fn brute_force(dict: &Dictionary, dd: &DerivedDictionary, doc: &Document, tau: f64) -> Vec<(u32, u32, u32, f64)> {
    let verifier = JaccArVerifier::new(dd);
    // Same substring length range as the framework (token count, from the
    // *distinct* set sizes of derived entities).
    let min_len = dd.iter().map(|(_, d)| sorted_set(d.tokens).len()).filter(|&l| l > 0).min();
    let max_len = dd.iter().map(|(_, d)| sorted_set(d.tokens).len()).max();
    let (Some(lo), Some(hi)) = (min_len, max_len) else { return Vec::new() };
    let w_lo = ((lo as f64 * tau + 1e-9).floor() as usize).max(1);
    let w_hi = (hi as f64 / tau - 1e-9).ceil() as usize;
    let n = doc.len();
    let mut out = Vec::new();
    for p in 0..n {
        for l in w_lo..=w_hi.min(n - p) {
            let s = sorted_set(&doc.tokens()[p..p + l]);
            for (e, _) in dict.iter() {
                let score = verifier.verify(e, &s, 0.0).value;
                if score >= tau {
                    out.push((p as u32, l as u32, e.0, score));
                }
            }
        }
    }
    out.sort_by_key(|r| (r.0, r.1, r.2));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_brute_force(inst in instance()) {
        let (dict, rules, doc, tau, _int) = materialize(&inst);
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        let engine = Aeetes::build(dict.clone(), &rules, &_int, AeetesConfig::default());
        let expected = brute_force(&dict, &dd, &doc, tau);
        for strategy in ExtractStrategy::ALL {
            let got: Vec<(u32, u32, u32, f64)> = engine
                .extract_with(&doc, tau, strategy)
                .0
                .into_iter()
                .map(|m| (m.span.start, m.span.len, m.entity.0, m.score))
                .collect();
            prop_assert_eq!(
                got.len(),
                expected.len(),
                "strategy {} tau {}: {:?} vs {:?}",
                strategy,
                tau,
                got,
                expected
            );
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!((g.0, g.1, g.2), (e.0, e.1, e.2), "strategy {}", strategy);
                prop_assert!((g.3 - e.3).abs() < 1e-12, "score {} vs {}", g.3, e.3);
            }
        }
    }
}
