//! End-to-end pipeline tests on generated corpora: the four strategies must
//! agree exactly, and every exact or synonym-rewritten gold mention must be
//! recovered with a perfect score.

use aeetes::datagen::{generate, DatasetProfile, MentionForm};
use aeetes::{Aeetes, AeetesConfig, Strategy};

fn engines() -> Vec<(Aeetes, aeetes::datagen::Dataset)> {
    DatasetProfile::all()
        .into_iter()
        .map(|p| {
            let data = generate(&p.scaled(0.01).with_docs(4), 7);
            let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
            (engine, data)
        })
        .collect()
}

#[test]
fn all_strategies_agree_on_every_corpus() {
    for (engine, data) in engines() {
        for doc in &data.documents {
            for tau in [0.7, 0.8, 0.9, 1.0] {
                let baseline = engine.extract_with(doc, tau, Strategy::Simple).0;
                for strategy in [Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
                    let got = engine.extract_with(doc, tau, strategy).0;
                    assert_eq!(baseline, got, "{}: strategy {strategy} at tau={tau}", data.name);
                }
            }
        }
    }
}

#[test]
fn exact_and_synonym_gold_recovered_perfectly() {
    use aeetes::sim::{sorted_set, JaccArVerifier};
    for (engine, data) in engines() {
        // The derivation cap (DeriveConfig::max_derived) can truncate the
        // exact rule combination a synonym mention was planted with, so the
        // contract is: the engine recovers a gold mention with score 1.0
        // exactly when Definition 2.1 over ITS derived dictionary scores it
        // 1.0 — checked against the independent sim-crate verifier.
        let verifier = JaccArVerifier::new(engine.derived());
        let mut recovered = 0usize;
        let mut total = 0usize;
        for (doc_id, doc) in data.documents.iter().enumerate() {
            let matches = engine.extract(doc, 0.95);
            for g in data.gold_for(doc_id) {
                if !matches!(g.form, MentionForm::Exact | MentionForm::Synonym) {
                    continue;
                }
                total += 1;
                let expected = verifier.verify(g.entity, &sorted_set(doc.slice(g.span)), 0.0).value;
                let hit = matches.iter().find(|m| m.entity == g.entity && m.span == g.span);
                if expected >= 0.95 {
                    let hit = hit.unwrap_or_else(|| panic!("{}: missing {:?} gold {:?}", data.name, g.form, g));
                    assert!((hit.score - expected).abs() < 1e-12, "{}: {:?}", data.name, g);
                    recovered += 1;
                } else {
                    assert!(hit.is_none(), "{}: engine reports a pair the exact verifier rejects: {:?}", data.name, g);
                }
            }
        }
        // Truncation must stay the exception, not the rule.
        assert!(
            recovered as f64 >= 0.7 * total as f64,
            "{}: only {recovered}/{total} exact+synonym gold mentions recoverable",
            data.name
        );
    }
}

#[test]
fn reported_scores_are_all_above_threshold_and_exact() {
    use aeetes::sim::{jaccard, sorted_set};
    for (engine, data) in engines() {
        let doc = &data.documents[0];
        let tau = 0.75;
        for m in engine.extract(doc, tau) {
            assert!(m.score >= tau);
            // Recompute the best-variant Jaccard independently.
            let variant = &engine.derived().derived(m.best_variant);
            assert_eq!(variant.origin, m.entity);
            let v = sorted_set(variant.tokens);
            let s = sorted_set(doc.slice(m.span));
            let expected = jaccard(&v, &s);
            assert!((m.score - expected).abs() < 1e-12, "reported {} vs recomputed {}", m.score, expected);
        }
    }
}

#[test]
fn monotone_in_threshold() {
    for (engine, data) in engines() {
        let doc = &data.documents[0];
        let mut prev = engine.extract(doc, 1.0);
        for tau in [0.9, 0.8, 0.7] {
            let cur = engine.extract(doc, tau);
            for m in &prev {
                assert!(
                    cur.iter().any(|x| x.entity == m.entity && x.span == m.span),
                    "{}: match lost when threshold lowered to {tau}",
                    data.name
                );
            }
            prev = cur;
        }
    }
}

#[test]
fn weighted_defaults_to_unweighted_with_unit_weights() {
    for (engine, data) in engines() {
        let doc = &data.documents[0];
        let plain = engine.extract(doc, 0.8);
        let (weighted, _) = engine.extract_weighted(doc, 0.8);
        assert_eq!(plain, weighted, "{}: all generated rules have weight 1.0", data.name);
    }
}
