//! Cross-validation: FaerieR (a completely independent algorithm — heap
//! grouping + lazy count + windowed counting over the same derived
//! dictionary) must produce exactly the same result pairs and scores as the
//! Aeetes engine on every corpus and threshold.

use aeetes::baselines::Faerie;
use aeetes::datagen::{generate, DatasetProfile};
use aeetes::rules::{DeriveConfig, DerivedDictionary};
use aeetes::{Aeetes, AeetesConfig};

#[test]
fn faerier_and_aeetes_return_identical_pairs() {
    for profile in DatasetProfile::all() {
        let data = generate(&profile.scaled(0.01).with_docs(3), 11);
        let dd = DerivedDictionary::build(&data.dictionary, &data.rules, &DeriveConfig::default());
        let faerier = Faerie::build_derived(&dd);
        let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
        for doc in &data.documents {
            for tau in [0.7, 0.8, 0.9] {
                let (fr, _) = faerier.extract(doc, tau);
                let am = engine.extract(doc, tau);
                let f_pairs: Vec<(u32, u32, u32)> = fr.iter().map(|m| (m.span.start, m.span.len, m.entity.0)).collect();
                let a_pairs: Vec<(u32, u32, u32)> = am.iter().map(|m| (m.span.start, m.span.len, m.entity.0)).collect();
                assert_eq!(f_pairs, a_pairs, "{}: tau={tau}", data.name);
                for (f, a) in fr.iter().zip(&am) {
                    assert!((f.score - a.score).abs() < 1e-12, "{}: score mismatch at {:?}: {} vs {}", data.name, f.span, f.score, a.score);
                }
            }
        }
    }
}

#[test]
fn plain_faerie_is_a_subset_of_aeetes() {
    // Without rules applied, Faerie over the origin dictionary must find a
    // subset of what the synonym-aware engine finds (same syntactic pairs).
    let data = generate(&DatasetProfile::pubmed_like().scaled(0.01).with_docs(3), 3);
    let plain = Faerie::build_plain(&data.dictionary);
    let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
    for doc in &data.documents {
        let (fr, _) = plain.extract(doc, 0.8);
        let am = engine.extract(doc, 0.8);
        for f in &fr {
            assert!(
                am.iter().any(|m| m.entity == f.entity && m.span == f.span && m.score >= f.score - 1e-12),
                "syntactic pair {f:?} missing from synonym-aware output"
            );
        }
    }
}

#[test]
fn exact_matcher_agrees_with_tau_one_scores() {
    use aeetes::baselines::ExactMatcher;
    let data = generate(&DatasetProfile::dbworld_like().scaled(0.01).with_docs(3), 5);
    let exact = ExactMatcher::build(&data.dictionary);
    let plain = Faerie::build_plain(&data.dictionary);
    for doc in &data.documents {
        let e_pairs: Vec<_> = exact.extract(doc);
        let (f_pairs, _) = plain.extract(doc, 1.0);
        // Every exact token-sequence match scores Jaccard 1.0 …
        for (entity, span) in &e_pairs {
            assert!(
                f_pairs.iter().any(|m| m.entity == *entity && m.span == *span),
                "exact match {entity:?}@{span:?} missing from Faerie at tau=1.0"
            );
        }
        // … and every Jaccard-1.0 span has the same token set as its entity.
        for m in &f_pairs {
            let mut a = doc.slice(m.span).to_vec();
            let mut b = data.dictionary.entity(m.entity).to_vec();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(a, b);
        }
    }
}
