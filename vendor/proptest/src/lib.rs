//! Offline shim for the `proptest` 1.x API subset used by this workspace:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! `prop_assert*!` / `prop_assume!`, the [`Strategy`] trait with `prop_map`,
//! numeric-range and regex-lite `&str` strategies, tuple strategies, and
//! `collection::{vec, hash_set}`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the assertion message only), and the regex support is the small subset the
//! test suite draws from — character classes, groups, `{m,n}` quantifiers and
//! `\PC` (any non-control character). Generation is deterministic per test
//! (seeded from the test's name), so failures reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// Per-test random source handed to [`Strategy::generate`].
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and rustc versions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(h))
    }
}

/// A value generator. The shim's strategies produce values directly instead
/// of proptest's value trees (which exist to support shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// `&str` patterns generate matching strings (regex-lite, see module docs).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = pattern::parse(self).unwrap_or_else(|e| panic!("unsupported pattern {self:?} in proptest shim: {e}"));
        let mut out = String::new();
        pattern::generate(&atoms, rng, &mut out);
        out
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    pub(crate) struct Quantified {
        atom: Atom,
        lo: u32,
        hi: u32,
    }

    pub(crate) enum Atom {
        Lit(char),
        Class(Vec<char>),
        /// `\PC`: any character outside the Unicode "Other" (control) category.
        AnyPrintable,
        Group(Vec<Quantified>),
    }

    pub(crate) fn parse(pat: &str) -> Result<Vec<Quantified>, String> {
        let mut chars = pat.chars().peekable();
        let seq = parse_seq(&mut chars, false)?;
        if chars.next().is_some() {
            return Err("unbalanced ')'".into());
        }
        Ok(seq)
    }

    fn parse_seq(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, in_group: bool) -> Result<Vec<Quantified>, String> {
        let mut seq = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                if in_group {
                    return Ok(seq);
                }
                break;
            }
            chars.next();
            let atom = match c {
                '[' => Atom::Class(parse_class(chars)?),
                '(' => {
                    let inner = parse_seq(chars, true)?;
                    if chars.next() != Some(')') {
                        return Err("unclosed '('".into());
                    }
                    Atom::Group(inner)
                }
                '\\' => match chars.next() {
                    Some('P') => match chars.next() {
                        Some('C') => Atom::AnyPrintable,
                        other => return Err(format!("unsupported escape \\P{other:?}")),
                    },
                    Some(esc @ ('\\' | '(' | ')' | '[' | ']' | '{' | '}' | '.' | '+' | '*' | '?')) => Atom::Lit(esc),
                    other => return Err(format!("unsupported escape \\{other:?}")),
                },
                '{' | '}' | '*' | '+' | '?' => return Err(format!("dangling quantifier {c:?}")),
                lit => Atom::Lit(lit),
            };
            let (lo, hi) = parse_quantifier(chars)?;
            seq.push(Quantified { atom, lo, hi });
        }
        if in_group {
            return Err("unclosed '('".into());
        }
        Ok(seq)
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, String> {
        let mut set = Vec::new();
        loop {
            let c = chars.next().ok_or("unclosed '['")?;
            if c == ']' {
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                return Ok(set);
            }
            if chars.peek() == Some(&'-') {
                chars.next();
                let end = chars.next().ok_or("unclosed '['")?;
                if end == ']' {
                    set.push(c);
                    set.push('-');
                    return Ok(set);
                }
                if (end as u32) < (c as u32) {
                    return Err(format!("inverted class range {c}-{end}"));
                }
                for cp in (c as u32)..=(end as u32) {
                    set.extend(char::from_u32(cp));
                }
            } else {
                set.push(c);
            }
        }
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<(u32, u32), String> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => return Err("unclosed '{'".into()),
                    }
                }
                let parse_n = |s: &str| s.trim().parse::<u32>().map_err(|_| format!("bad bound {s:?}"));
                match body.split_once(',') {
                    Some((lo, hi)) => Ok((parse_n(lo)?, parse_n(hi)?)),
                    None => {
                        let n = parse_n(&body)?;
                        Ok((n, n))
                    }
                }
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            _ => Ok((1, 1)),
        }
    }

    pub(crate) fn generate(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
        for q in seq {
            let n = if q.lo >= q.hi { q.lo } else { rng.0.gen_range(q.lo..=q.hi) };
            for _ in 0..n {
                match &q.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.0.gen_range(0..set.len())]),
                    Atom::AnyPrintable => out.push(any_printable(rng)),
                    Atom::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }

    /// Mostly printable ASCII with a sprinkling of multi-byte characters so
    /// `\PC` exercises non-ASCII and multi-byte UTF-8 paths.
    fn any_printable(rng: &mut TestRng) -> char {
        const EXOTIC: &[char] = &['é', 'ß', 'ñ', 'Ж', 'λ', 'ا', 'あ', '中', '한', '∑', '€', '𝕀', '😀', '\u{00a0}'];
        match rng.0.gen_range(0u32..10) {
            0..=7 => char::from(rng.0.gen_range(0x20u8..0x7f)),
            8 => EXOTIC[rng.0.gen_range(0..EXOTIC.len())],
            _ => char::from_u32(rng.0.gen_range(0x00a1u32..0x024f)).unwrap_or('¤'),
        }
    }
}

/// Size specification for collection strategies (`Range`/`RangeInclusive`
/// of `usize`, or an exact `usize`).
pub trait SizeBounds {
    /// Draws a size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeBounds for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.0.gen_range(self.clone())
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

impl SizeBounds for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{SizeBounds, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub fn vec<S: Strategy, R: SizeBounds>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeBounds> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` aiming for a size drawn from `size`
    /// (may come up short if the element space is small).
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeBounds,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeBounds,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = HashSet::with_capacity(n);
            // Duplicates don't grow the set; bound the attempts so tiny
            // element spaces can't loop forever.
            for _ in 0..n.saturating_mul(10).saturating_add(16) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps brute-force oracle tests
        // fast while still exploring a useful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not complete. Only rejection (via `prop_assume!`)
/// travels through this; assertion failures panic like `assert!`.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and doesn't count.
    Reject,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
        }
    }
}

/// Drives one property test: repeatedly draws inputs and runs `case` until
/// `cfg.cases` cases pass. Not part of proptest's public API; used by the
/// expansion of [`proptest!`].
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(cfg.cases) * 16 + 256;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(rejected <= max_rejects, "{name}: prop_assume! rejected {rejected} cases (passed only {passed}/{})", cfg.cases);
            }
        }
    }
}

/// Declares property tests: `fn name(binding in strategy, ...) { body }`.
/// An optional `#![proptest_config(expr)]` header overrides the config.
/// Attributes on each `fn` (including `#[test]`) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&$cfg, stringify!($name), |__shim_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __shim_rng);)+
                // The closure keeps `?` usable inside `$body`, as in real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __shim_result: ::std::result::Result<(), $crate::TestCaseError> = (|| { $body Ok(()) })();
                __shim_result
            });
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Like `assert!` inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Like `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Like `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Rejects the current case (it doesn't count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..=7, y in 0usize..5, f in 0.25f64..1.0) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..1.0).contains(&f), "f={f}");
        }

        #[test]
        fn patterns_match_their_own_shape(s in "[a-c]{1,4}", t in "[a-d]( [a-d]){0,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let words: Vec<&str> = t.split(' ').collect();
            prop_assert!((1..=4).contains(&words.len()));
            for w in words {
                prop_assert!(w.len() == 1 && ('a'..='d').contains(&w.chars().next().unwrap()));
            }
        }

        #[test]
        fn printable_class_excludes_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn collections_and_maps_compose(
            v in crate::collection::vec((0u32..40).prop_map(|t| t * 2), 0..15),
            set in crate::collection::hash_set("[a-c]{1,4}", 0..8),
        ) {
            prop_assert!(v.len() < 15);
            prop_assert!(v.iter().all(|t| t % 2 == 0 && *t < 80));
            prop_assert!(set.len() < 8);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = "[a-z]{1,6}";
        let mut a = super::TestRng::from_name("some_test");
        let mut b = super::TestRng::from_name("some_test");
        for _ in 0..32 {
            assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
        }
    }
}
