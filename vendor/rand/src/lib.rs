//! Offline shim for the `rand` 0.8 API subset used by this workspace:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64` and
//! `rngs::SmallRng`. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic, fast, and statistically fine for synthetic data
//! generation and tests. **Not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range (the shim's stand-in
/// for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable from the unit distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_ranges!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`f64` in `[0, 1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call-compatibility with `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..2000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((600..1400).contains(&trues), "gen_bool(0.5) wildly biased: {trues}/2000");
    }
}
