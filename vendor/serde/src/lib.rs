//! Offline shim for the `serde` 1.x API subset used by this workspace.
//!
//! Instead of serde's visitor-based `Serializer` machinery, serializable
//! types render themselves into a small self-describing [`Content`] tree
//! that `serde_json` (the only consumer in this workspace) converts to its
//! `Value`. `#[derive(Serialize)]` is provided by the sibling
//! `serde_derive` shim and generates a `Content::Map` of the named fields.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as content.
    fn to_content(&self) -> Content;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u32.to_content(), Content::U64(3));
        assert_eq!((-3i32).to_content(), Content::I64(-3));
        assert_eq!(0.5f64.to_content(), Content::F64(0.5));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
        assert_eq!(vec![1u8, 2].to_content(), Content::Seq(vec![Content::U64(1), Content::U64(2)]));
    }
}
