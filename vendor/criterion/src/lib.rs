//! Offline shim for the `criterion` 0.5 API subset used by this workspace's
//! benches: `Criterion`, `benchmark_group` (with `sample_size`,
//! `warm_up_time`, `measurement_time`, `bench_function`, `finish`),
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is plain wall-clock: each benchmark warms up for `warm_up_time`,
//! then runs batches until `measurement_time` elapses and reports the mean,
//! min and max per-iteration latency. There is no statistical analysis, no
//! report output and no comparison against saved baselines — the shim exists
//! so `cargo bench` compiles and produces usable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (used to size timing batches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before timing.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets how long to spend timing.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), deadline: None };

        // Warm-up: run without recording until the warm-up budget elapses.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut b);
            b.samples.clear();
        }

        // Measurement: keep invoking the routine until the budget elapses
        // or we have the requested number of samples.
        b.deadline = Some(Instant::now() + self.measurement_time);
        while b.samples.len() < self.sample_size && b.deadline.is_some_and(|d| Instant::now() < d) {
            f(&mut b);
        }

        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Option<Instant>,
}

impl Bencher {
    /// Times one execution of `routine` per call (criterion batches
    /// internally; the shim simply records one sample per invocation).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        drop(out);
        self.samples.push(elapsed);
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{id}: {} samples, mean {}, min {}, max {}",
        samples.len(),
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
