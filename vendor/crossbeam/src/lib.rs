//! Offline shim for the `crossbeam` 0.8 API subset used by this workspace:
//! `crossbeam::scope`, backed by `std::thread::scope` (which landed in std
//! after crossbeam popularized the pattern).

use std::any::Any;
use std::thread;

/// A scope handle passed to the closure of [`scope`]; spawned threads may
/// borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again, like
    /// crossbeam's `Scope::spawn` (callers conventionally ignore it).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing scoped threads can be spawned;
/// joins them all before returning. Returns `Err` with the panic payload
/// when the closure itself panics (spawned-thread panics propagate on join,
/// as with crossbeam).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn closure_panic_is_reported() {
        assert!(scope(|_| panic!("boom")).is_err());
    }
}
