//! Offline shim for the `serde_json` 1.x API subset used by this
//! workspace: [`Value`], [`Map`], [`to_value`], [`to_string`],
//! [`to_string_pretty`] and the [`json!`] macro (object / array / scalar
//! literals with expression values). Output is spec-compliant JSON with
//! full string escaping; object keys keep insertion order.

use serde::{Content, Serialize};
use std::fmt;

/// An order-preserving string-keyed map (stand-in for `serde_json::Map`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Inserts `value` at `key`, replacing and returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON number: integers stay exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            // serde_json serializes non-finite floats as null.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k.clone(), Value::from_content(v));
                }
                Value::Object(m)
            }
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Value::Object(map) => write_seq(out, indent, level, '{', '}', map.len(), |out, i| {
                let (k, v) = &map.entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(out: &mut String, indent: Option<usize>, level: usize, open: char, close: char, n: usize, mut item: impl FnMut(&mut String, usize)) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `Display` writes compact JSON (matches `serde_json::Value`'s `Display`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(map) => Content::Map(map.iter().map(|(k, v)| (k.clone(), v.to_content())).collect()),
        }
    }
}

/// Converts any [`Serialize`] value to a [`Value`]. Infallible in this shim
/// (kept as `Result` for call-compatibility).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content(&value.to_content()))
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut s = String::new();
    v.write(&mut s, None, 0);
    Ok(s)
}

/// Serializes to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut s = String::new();
    v.write(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialization error (unused by this shim; conversions are infallible).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] from a JSON-shaped literal with expression values.
///
/// Values may be `null`, nested `[...]`/`{...}` literals, or arbitrary Rust
/// expressions (routed through [`to_value`]). Keys must be literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec = Vec::<$crate::Value>::new();
        let sink = &mut vec;
        $crate::json_arr!(sink, $($items)*);
        $crate::Value::Array(vec)
    }};
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_obj!(map, $($entries)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible to_value")
    };
}

/// Array-element muncher for [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_arr {
    ($vec:ident) => {};
    ($vec:ident,) => {};
    ($vec:ident, null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($arr)* ]));
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($obj)* }));
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, $val:expr , $($rest:tt)*) => {
        $vec.push($crate::json!($val));
        $crate::json_arr!($vec, $($rest)*);
    };
    ($vec:ident, $val:expr) => {
        $vec.push($crate::json!($val));
    };
}

/// Object-entry muncher for [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_obj {
    ($map:ident) => {};
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($arr)* ]));
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($obj)* }));
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($val));
        $crate::json_obj!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $val:expr) => {
        $map.insert(($key).to_string(), $crate::json!($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = json!({ "a": 1u32, "b": [true, null], "c": "x\"y" });
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1u32 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn object_mutation_like_experiments_harness() {
        let mut v = to_value(42u64).unwrap();
        assert_eq!(v, Value::Number(Number::U64(42)));
        v = json!({});
        if let Value::Object(m) = &mut v {
            m.insert("experiment".into(), Value::String("fig8".into()));
        }
        assert_eq!(v.to_string(), r#"{"experiment":"fig8"}"#);
    }

    #[test]
    fn numbers_round_cleanly() {
        assert_eq!(json!(2.5f64).to_string(), "2.5");
        assert_eq!(json!(-3i32).to_string(), "-3");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }
}
