//! Offline shim for the `serde_json` 1.x API subset used by this
//! workspace: [`Value`], [`Map`], [`to_value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`json!`] macro (object /
//! array / scalar literals with expression values). Output is
//! spec-compliant JSON with full string escaping; object keys keep
//! insertion order. The parser is strict (no trailing garbage, no
//! comments) and depth-limited so adversarial input cannot overflow the
//! stack.

use serde::{Content, Serialize};
use std::fmt;

/// An order-preserving string-keyed map (stand-in for `serde_json::Map`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Inserts `value` at `key`, replacing and returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON number: integers stay exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            // serde_json serializes non-finite floats as null.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k.clone(), Value::from_content(v));
                }
                Value::Object(m)
            }
        }
    }

    /// Object member lookup: `Some(&value)` when `self` is an object with
    /// the key, `None` otherwise (matches `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64` when `self` is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// The numeric content as `u64` when `self` is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean content when `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The entries when `self` is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The items when `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Value::Object(map) => write_seq(out, indent, level, '{', '}', map.len(), |out, i| {
                let (k, v) = &map.entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(out: &mut String, indent: Option<usize>, level: usize, open: char, close: char, n: usize, mut item: impl FnMut(&mut String, usize)) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `Display` writes compact JSON (matches `serde_json::Value`'s `Display`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(map) => Content::Map(map.iter().map(|(k, v)| (k.clone(), v.to_content())).collect()),
        }
    }
}

/// Converts any [`Serialize`] value to a [`Value`]. Infallible in this shim
/// (kept as `Result` for call-compatibility).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content(&value.to_content()))
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut s = String::new();
    v.write(&mut s, None, 0);
    Ok(s)
}

/// Serializes to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content());
    let mut s = String::new();
    v.write(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Maximum `[`/`{` nesting the parser accepts. Untrusted input like
/// `[[[[…` must fail with an error, not a stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

/// Parses a complete JSON document from `s` (strict: exactly one value,
/// surrounded by optional whitespace, no trailing garbage).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value); // duplicate keys: last one wins, as in serde_json
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..DFFF`; lone surrogates
                            // become U+FFFD rather than invalid UTF-8.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(code).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid UTF-8 slice"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Number(Number::F64(v))),
            _ => Err(Error(format!("invalid number `{text}` at byte {start}"))),
        }
    }
}

/// Builds a [`Value`] from a JSON-shaped literal with expression values.
///
/// Values may be `null`, nested `[...]`/`{...}` literals, or arbitrary Rust
/// expressions (routed through [`to_value`]). Keys must be literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec = Vec::<$crate::Value>::new();
        let sink = &mut vec;
        $crate::json_arr!(sink, $($items)*);
        $crate::Value::Array(vec)
    }};
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_obj!(map, $($entries)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible to_value")
    };
}

/// Array-element muncher for [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_arr {
    ($vec:ident) => {};
    ($vec:ident,) => {};
    ($vec:ident, null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($arr)* ]));
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($obj)* }));
        $crate::json_arr!($vec $(, $($rest)*)?);
    };
    ($vec:ident, $val:expr , $($rest:tt)*) => {
        $vec.push($crate::json!($val));
        $crate::json_arr!($vec, $($rest)*);
    };
    ($vec:ident, $val:expr) => {
        $vec.push($crate::json!($val));
    };
}

/// Object-entry muncher for [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_obj {
    ($map:ident) => {};
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($arr)* ]));
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($obj)* }));
        $crate::json_obj!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : $val:expr , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($val));
        $crate::json_obj!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $val:expr) => {
        $map.insert(($key).to_string(), $crate::json!($val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = json!({ "a": 1u32, "b": [true, null], "c": "x\"y" });
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1u32 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn object_mutation_like_experiments_harness() {
        let mut v = to_value(42u64).unwrap();
        assert_eq!(v, Value::Number(Number::U64(42)));
        v = json!({});
        if let Value::Object(m) = &mut v {
            m.insert("experiment".into(), Value::String("fig8".into()));
        }
        assert_eq!(v.to_string(), r#"{"experiment":"fig8"}"#);
    }

    #[test]
    fn numbers_round_cleanly() {
        assert_eq!(json!(2.5f64).to_string(), "2.5");
        assert_eq!(json!(-3i32).to_string(), "-3");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = json!({ "a": 1u32, "b": [true, null, -2i32, 2.5f64], "c": "x\"y\n", "d": { "nested": "значение" } });
        let parsed = from_str(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), Value::Number(Number::U64(42)));
        assert_eq!(from_str("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(from_str("2.5e1").unwrap(), Value::Number(Number::F64(25.0)));
        assert_eq!(from_str(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parse_accessors() {
        let v = from_str(r#"{"type":"extract","tau":0.8,"n":3,"flag":false}"#).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("extract"));
        assert_eq!(v.get("tau").and_then(Value::as_f64), Some(0.8));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert!(v.as_array().is_none());
    }

    #[test]
    fn parse_unicode_escapes_and_surrogates() {
        assert_eq!(from_str(r#""Aé""#).unwrap(), Value::String("Aé".into()));
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::String("😀".into()));
        // Lone surrogate degrades to U+FFFD instead of an error or bad UTF-8.
        assert_eq!(from_str(r#""\ud800x""#).unwrap(), Value::String("\u{FFFD}x".into()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "1 2",
            "{}{}",
            "\"unterminated",
            "\"bad\\q\"",
            "01a",
            "--1",
            "+1",
            "NaN",
            "Infinity",
            "{\"a\":1,}",
            "[1,]",
            "'single'",
            "{a:1}",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Unescaped control characters are invalid JSON.
        assert!(from_str("\"a\u{0001}b\"").is_err());
    }

    #[test]
    fn parse_depth_limit_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
        // At or below the limit still parses fine.
        let ok = "[".repeat(64) + "1" + &"]".repeat(64);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn parse_duplicate_keys_last_wins() {
        let v = from_str(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }
}
