//! Offline shim for serde's `#[derive(Serialize)]`, hand-rolled on the
//! compiler's `proc_macro` API (no `syn`/`quote`). Supports exactly what
//! this workspace derives on: non-generic structs with named fields. The
//! generated impl renders a `serde::Content::Map` of the fields in
//! declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("valid compile_error"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name: Option<String> = None;
    let mut fields_group = None;
    let mut it = tokens.iter().peekable();
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                match it.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected a struct name after `struct`".into()),
                }
                // The next brace group holds the fields (skips nothing in
                // practice: the derived structs are non-generic).
                for rest in it.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            fields_group = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    let name = name.ok_or_else(|| "derive(Serialize) shim supports only structs".to_string())?;
    let body = fields_group.ok_or_else(|| format!("derive(Serialize) shim supports only named-field structs ({name})"))?;

    let fields = field_names(body)?;
    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!("({f:?}.to_string(), serde::Serialize::to_content(&self.{f})),"));
    }
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse().map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Extracts field names from the brace-group token stream of a struct:
/// per comma-separated field, the identifier directly before the first
/// top-level `:` (skipping `#[...]` attributes and visibility).
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                flush_field(&current, &mut names)?;
                current.clear();
            }
            _ => current.push(tt),
        }
    }
    flush_field(&current, &mut names)?;
    Ok(names)
}

fn flush_field(tokens: &[TokenTree], names: &mut Vec<String>) -> Result<(), String> {
    if tokens.is_empty() {
        return Ok(());
    }
    let mut last_ident: Option<String> = None;
    for tt in tokens {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ':' => {
                return match last_ident {
                    Some(name) => {
                        names.push(name);
                        Ok(())
                    }
                    None => Err("field without a name before `:`".into()),
                };
            }
            // Attributes (`#` + bracket group) and visibility groups are
            // skipped; they never carry the field name.
            _ => {}
        }
    }
    Err("derive(Serialize) shim supports only named fields (tuple struct?)".into())
}
