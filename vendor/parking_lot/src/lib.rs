//! Offline shim for the `parking_lot` 0.12 API subset used by this
//! workspace: a `Mutex` whose `lock()` never returns a poison error.
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the value is recovered as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
