//! Biomedical-style extraction on a synthetic PubMed-like corpus: measures
//! how much recall the synonym rules buy over purely syntactic matching,
//! and how fuzzy verification additionally recovers typo'd mentions —
//! the paper's §1 motivation ("Mitochondrial Disease" vs "Oxidative
//! Phosphorylation Deficiency") at corpus scale.
//!
//! Run with: `cargo run --example biomedical --release`

use aeetes::core::{extract_fuzzy, FuzzyConfig};
use aeetes::datagen::{generate, DatasetProfile, MentionForm};
use aeetes::{suppress_overlaps, Aeetes, AeetesConfig, Dictionary, RuleSet};

fn main() {
    // A small PubMed-like corpus (see aeetes-datagen for the calibration).
    let data = generate(&DatasetProfile::pubmed_like().scaled(0.05), 2024);
    println!(
        "corpus: {} documents, {} entities, {} synonym rules, {} gold mentions",
        data.documents.len(),
        data.dictionary.len(),
        data.rules.len(),
        data.gold.len()
    );

    let tau = 0.8;
    // Synonym-aware engine vs a rule-less engine (pure syntactic Jaccard).
    let with_rules = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
    let without_rules = Aeetes::build(data.dictionary.clone(), &RuleSet::new(), &data.interner, AeetesConfig::default());

    let mut recall_with = Recall::default();
    let mut recall_without = Recall::default();
    let mut fuzzy_hits = 0usize;
    let mut typo_gold = 0usize;

    for (doc_id, doc) in data.documents.iter().enumerate() {
        let found_with = suppress_overlaps(with_rules.extract(doc, tau));
        let found_without = suppress_overlaps(without_rules.extract(doc, tau));
        for g in data.gold_for(doc_id) {
            recall_with.tally(g.form, found_with.iter().any(|m| m.entity == g.entity && m.span == g.span));
            recall_without.tally(g.form, found_without.iter().any(|m| m.entity == g.entity && m.span == g.span));
        }
        // Fuzzy pass over typo'd gold only (expensive: run on a sample).
        if doc_id < 10 {
            let fuzzy = extract_fuzzy(&with_rules, doc, &data.interner, FuzzyConfig { delta: 0.8, tau });
            for g in data.gold_for(doc_id).filter(|g| g.form == MentionForm::Typo) {
                typo_gold += 1;
                if fuzzy.iter().any(|m| m.entity == g.entity && m.span == g.span) {
                    fuzzy_hits += 1;
                }
            }
        }
    }

    println!("\nrecall of gold mentions at τ = {tau}:");
    println!("  form      with rules   without rules");
    for form in [MentionForm::Exact, MentionForm::Synonym, MentionForm::Noisy] {
        println!("  {:8} {:>10.3} {:>14.3}", format!("{form:?}"), recall_with.rate(form), recall_without.rate(form));
    }
    println!("\nfuzzy verification recovered {fuzzy_hits}/{typo_gold} typo'd mentions (first 10 docs)");

    // The headline claim: synonym rules rescue the synonym-form mentions.
    assert!(recall_with.rate(MentionForm::Exact) > 0.95);
    assert!(recall_with.rate(MentionForm::Synonym) > 0.9);
    assert!(
        recall_without.rate(MentionForm::Synonym) < 0.3,
        "syntactic matching should miss most synonym mentions, got {}",
        recall_without.rate(MentionForm::Synonym)
    );
}

/// Per-form recall bookkeeping.
#[derive(Default)]
struct Recall {
    hits: std::collections::HashMap<MentionForm, (usize, usize)>,
}

impl Recall {
    fn tally(&mut self, form: MentionForm, hit: bool) {
        let e = self.hits.entry(form).or_insert((0, 0));
        e.1 += 1;
        if hit {
            e.0 += 1;
        }
    }
    fn rate(&self, form: MentionForm) -> f64 {
        let (h, n) = self.hits.get(&form).copied().unwrap_or((0, 0));
        if n == 0 {
            0.0
        } else {
            h as f64 / n as f64
        }
    }
}

// `Dictionary` needs Clone for the two engines above; assert it here so a
// regression fails loudly at compile time.
fn _assert_clone(d: &Dictionary) -> Dictionary {
    d.clone()
}
