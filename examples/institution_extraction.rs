//! The paper's Figure 1 / Example 1.1 walkthrough: extracting institution
//! names from a PC-member listing, comparing exact match, syntactic AEE
//! (plain Faerie) and synonym-aware AEES (Aeetes).
//!
//! The document contains four mentions:
//!   s1 "UW Madison"                         — needs rule UW ⇔ University of Wisconsin
//!   s2 "Purdue University in USA"           — syntactically similar (J = 3/4)
//!   s3 "Purdue University USA"              — exact
//!   s4 "University of Queensland Australia" — needs rules UQ ⇔ …, AU ⇔ Australia
//!
//! Exact match finds s3; syntactic AEE finds s2 + s3; Aeetes finds all four.
//!
//! Run with: `cargo run --example institution_extraction`

use aeetes::baselines::{ExactMatcher, Faerie};
use aeetes::{suppress_overlaps, Aeetes, AeetesConfig, Dictionary, Document, Interner, RuleSet, Tokenizer};

fn main() {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();

    // Dictionary (Figure 1).
    let mut dict = Dictionary::new();
    dict.push("University of Wisconsin Madison", &tokenizer, &mut interner); // e1
    dict.push("Purdue University USA", &tokenizer, &mut interner); // e2
    dict.push("UQ AU", &tokenizer, &mut interner); // e3

    // Synonym rule table (Figure 1).
    let mut rules = RuleSet::new();
    rules.push_str("UQ", "University of Queensland", &tokenizer, &mut interner).unwrap(); // r1
    rules.push_str("USA", "United States", &tokenizer, &mut interner).unwrap(); // r2
    rules.push_str("AU", "Australia", &tokenizer, &mut interner).unwrap(); // r3
    rules.push_str("UW", "University of Wisconsin", &tokenizer, &mut interner).unwrap(); // r4

    let doc = Document::parse(
        "PC members: Alice from UW Madison, Bob from Purdue University in USA, \
         Carol from Purdue University USA, Dan from University of Queensland Australia.",
        &tokenizer,
        &mut interner,
    );
    let tau = 0.7;

    // --- Exact match: finds only s3. ---
    let exact = ExactMatcher::build(&dict);
    let exact_hits = exact.extract(&doc);
    println!("exact match        → {} mention(s)", exact_hits.len());
    for (e, span) in &exact_hits {
        println!("    \"{}\" = {}", doc.text_of(*span).unwrap(), dict.record(*e).raw);
    }

    // --- Syntactic AEE (plain Faerie, no synonyms): finds s2 and s3. ---
    let faerie = Faerie::build_plain(&dict);
    let (faerie_hits, _) = faerie.extract(&doc, tau);
    println!("\nsyntactic AEE      → {} raw pair(s) at τ = {tau}", faerie_hits.len());
    for m in &faerie_hits {
        println!("    {:5.3} \"{}\" = {}", m.score, doc.text_of(m.span).unwrap(), dict.record(m.entity).raw);
    }

    // --- Synonym-aware AEES (Aeetes): finds all of s1..s4. ---
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let raw = engine.extract(&doc, tau);
    let best = suppress_overlaps(raw);
    println!("\nsynonym-aware AEES → {} mention(s) at τ = {tau} (best per region)", best.len());
    for m in &best {
        println!("    {:5.3} \"{}\" = {}", m.score, doc.text_of(m.span).unwrap(), engine.dictionary().record(m.entity).raw);
    }

    // The paper's Example 1.1 outcome.
    assert_eq!(exact_hits.len(), 1, "exact finds only s3");
    let texts: Vec<&str> = best.iter().map(|m| doc.text_of(m.span).unwrap()).collect();
    for expected in [
        "UW Madison",
        "Purdue University in USA",
        "Purdue University USA",
        "University of Queensland Australia",
    ] {
        assert!(texts.contains(&expected), "Aeetes should extract {expected:?}, got {texts:?}");
    }
}
