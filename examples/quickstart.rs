//! Quickstart: build an engine from a dictionary + synonym rules and
//! extract mentions from a document.
//!
//! Run with: `cargo run --example quickstart`

use aeetes::{Aeetes, AeetesConfig, Dictionary, Document, Interner, RuleSet, Tokenizer};

fn main() {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();

    // 1. The reference entity table (the "dictionary").
    let mut dict = Dictionary::new();
    for name in [
        "Massachusetts Institute of Technology",
        "University of California Los Angeles",
        "New York University",
    ] {
        dict.push(name, &tokenizer, &mut interner);
    }

    // 2. Synonym rules ⟨lhs ⇔ rhs⟩: both directions are applied off-line.
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [
        ("MIT", "Massachusetts Institute of Technology"),
        ("UCLA", "University of California Los Angeles"),
        ("NYU", "New York University"),
        ("Big Apple", "New York"),
    ] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).expect("valid rule");
    }

    // 3. Off-line preprocessing: derived dictionary + clustered index.
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    println!(
        "engine ready: {} entities → {} derived variants, {} index entries\n",
        engine.dictionary().len(),
        engine.derived().len(),
        engine.index().total_entries(),
    );

    // 4. On-line extraction at threshold τ = 0.8.
    let doc = Document::parse(
        "After MIT she joined the University of California, Los Angeles; \
         her sister stayed at NYU in the Big Apple University area.",
        &tokenizer,
        &mut interner,
    );
    let tau = 0.8;
    let matches = engine.extract(&doc, tau);

    println!("matches at τ = {tau}:");
    for m in &matches {
        println!("  {:5.3}  \"{}\"  →  {}", m.score, doc.text_of(m.span).unwrap_or("<span>"), engine.dictionary().record(m.entity).raw,);
    }
    assert!(!matches.is_empty(), "quickstart should find mentions");
}
