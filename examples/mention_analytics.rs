//! Corpus-level mention analytics on a synthetic job-postings corpus — the
//! paper's §1 motivating pipeline: extract referenced entities from a large
//! document stream and aggregate them as analysis signals.
//!
//! Demonstrates `mention_report` (per-entity counts, top-k ranking) and
//! parallel batch extraction.
//!
//! Run with: `cargo run --release --example mention_analytics`

use aeetes::core::mention_report;
use aeetes::datagen::{generate, DatasetProfile};
use aeetes::extract_batch;
use aeetes::{Aeetes, AeetesConfig};
use std::time::Instant;

fn main() {
    let data = generate(&DatasetProfile::usjob_like().scaled(0.05), 7);
    let engine = Aeetes::build(data.dictionary.clone(), &data.rules, &data.interner, AeetesConfig::default());
    println!("corpus: {} documents, {} entities, {} synonym rules", data.documents.len(), data.dictionary.len(), data.rules.len());

    let tau = 0.85;

    // --- Aggregated report (suppressed: one mention per document region). ---
    let t = Instant::now();
    let report = mention_report(&engine, data.documents.iter(), tau, true);
    println!(
        "\nreport over {} docs in {:.1} ms: {} mentions of {} distinct entities \
         ({} docs with ≥1 mention)",
        report.documents,
        t.elapsed().as_secs_f64() * 1e3,
        report.total_mentions,
        report.distinct_entities(),
        report.documents_with_mentions,
    );
    println!("\ntop mentioned entities:");
    for (e, count) in report.top(5) {
        println!("  {count:>4} × {}", engine.dictionary().record(e).raw);
    }

    // --- The same extraction fanned out over worker threads. ---
    let t = Instant::now();
    let serial = extract_batch(&engine, &data.documents, tau, 1);
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let parallel = extract_batch(&engine, &data.documents, tau, 4);
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial, parallel, "parallel batch must match serial results");
    println!(
        "\nbatch extraction: {serial_ms:.1} ms on one thread, {parallel_ms:.1} ms on four \
         ({:.2}x)",
        serial_ms / parallel_ms.max(1e-9)
    );

    // Sanity: the report counts agree with the planted gold mention volume.
    assert!(report.total_mentions > 0);
    assert!(report.documents_with_mentions > data.documents.len() / 2);
}
