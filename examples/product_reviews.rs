//! The introduction's motivating workload: a product analysis system that
//! scans consumer reviews for mentions of catalog products, where reviewers
//! abbreviate and paraphrase product names.
//!
//! Demonstrates batch extraction over many documents, overlap suppression,
//! top-k ranking and per-review reporting.
//!
//! Run with: `cargo run --example product_reviews`

use aeetes::core::extract_top_k;
use aeetes::{suppress_overlaps, Aeetes, AeetesConfig, Dictionary, Document, Interner, RuleSet, Tokenizer};

fn main() {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();

    // Product catalog.
    let mut catalog = Dictionary::new();
    for product in [
        "ThinkPad X1 Carbon Gen 11",
        "MacBook Pro 14 inch",
        "Galaxy S24 Ultra",
        "Pixel 8 Pro",
        "Surface Laptop Studio 2",
    ] {
        catalog.push(product, &tokenizer, &mut interner);
    }

    // Synonyms reviewers actually use.
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [
        ("ThinkPad X1 Carbon", "X1C"),
        ("MacBook Pro", "MBP"),
        ("Galaxy S24 Ultra", "S24U"),
        ("14 inch", "14in"),
        ("Gen 11", "11th Gen"),
        ("Pixel 8 Pro", "P8P"),
    ] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).expect("valid rule");
    }

    let engine = Aeetes::build(catalog, &rules, &interner, AeetesConfig::default());

    let reviews = [
        "Upgraded from my old laptop to the X1C Gen 11 and the keyboard is unreal.",
        "The MBP 14in throttles less than my desktop; battery life is absurd.",
        "Camera shootout: the S24U wins at night, but the P8P has better skin tones.",
        "Returned the Surface Laptop Studio 2, the hinge wobbled out of the box.",
        "No product mentioned here, just a rant about shipping delays.",
    ];

    let tau = 0.75;
    let mut total = 0;
    for (i, review) in reviews.iter().enumerate() {
        let doc = Document::parse(review, &tokenizer, &mut interner);
        let mentions = suppress_overlaps(engine.extract(&doc, tau));
        println!("review #{i}: {}", review);
        if mentions.is_empty() {
            println!("    (no product mentions)");
        }
        for m in &mentions {
            println!("    {:5.3}  \"{}\"  →  {}", m.score, doc.text_of(m.span).unwrap_or("<span>"), engine.dictionary().record(m.entity).raw,);
        }
        total += mentions.len();
        println!();
    }
    assert!(total >= 5, "expected at least five product mentions, got {total}");

    // Top-k: the single most confident mention in a noisy review.
    let doc = Document::parse("torn between the galaxy s24 ultra the pixel 8 pro and honestly the macbook pro 14 inch", &tokenizer, &mut interner);
    let top = extract_top_k(&engine, &doc, 3, 0.6);
    println!("top-3 mentions in the comparison review:");
    for m in &top {
        println!("    {:5.3}  \"{}\"  →  {}", m.score, doc.text_of(m.span).unwrap_or("<span>"), engine.dictionary().record(m.entity).raw,);
    }
    assert_eq!(top.len(), 3);
}
