//! Bootstrapping synonym rules from the dictionary itself (§5 "Gathering
//! Synonym Rules"): mine abbreviation patterns, review the candidates, feed
//! them to the engine, and watch previously-invisible mentions appear.
//!
//! Run with: `cargo run --example rule_discovery`

use aeetes::rules::{add_discovered, discover_abbreviations, DiscoveryConfig};
use aeetes::{Aeetes, AeetesConfig, Dictionary, Document, Interner, RuleSet, Tokenizer};

fn main() {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();

    // A dictionary that *already contains* both the abbreviations and the
    // expansions, as real reference tables usually do.
    let mut dict = Dictionary::new();
    for entry in [
        "UQ AU",
        "University of Queensland Australia",
        "NYU Stern",
        "New York University",
        "MIT CSAIL",
        "Massachusetts Institute of Technology",
        "Univ of Melbourne",
        "University of Sydney",
    ] {
        dict.push(entry, &tokenizer, &mut interner);
    }

    // Mine abbreviation-style rule candidates.
    let discovered = discover_abbreviations(&dict, &interner, &DiscoveryConfig::default());
    println!("discovered {} candidate rule(s):", discovered.len());
    for r in &discovered {
        println!("  [{:?}, support {}] {} ⇔ {}", r.kind, r.support, interner.resolve(r.short), interner.render(&r.expansion),);
    }

    // Without rules: the abbreviation mention is invisible.
    let doc = Document::parse("panel: a speaker from the University of Queensland Australia and one from NYU", &tokenizer, &mut interner);
    let bare = Aeetes::build(dict.clone(), &RuleSet::new(), &interner, AeetesConfig::default());
    let before = bare.extract(&doc, 0.9).len();

    // With discovered rules (plus one hand-written rule the miner cannot
    // see: "au" is below the abbreviation length thresholds). Mixing mined
    // and curated rules is the realistic workflow §5 describes.
    let mut rules = RuleSet::new();
    let added = add_discovered(&mut rules, &discovered, 1.0);
    rules.push_str("AU", "Australia", &tokenizer, &mut interner).expect("manual rule");
    println!("\nadded {added} discovered rule(s) + 1 manual rule");
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let matches = engine.extract(&doc, 0.9);
    println!("\nmatches at τ = 0.9 with the combined rule set:");
    for m in &matches {
        println!("  {:5.3}  \"{}\"  →  {}", m.score, doc.text_of(m.span).unwrap_or("<span>"), engine.dictionary().record(m.entity).raw,);
    }
    assert!(matches.len() > before, "discovered rules must surface extra mentions");
    assert!(
        matches.iter().any(|m| engine.dictionary().record(m.entity).raw == "New York University"),
        "the discovered NYU initialism should resolve the abbreviation mention"
    );
    assert!(
        matches.iter().any(|m| engine.dictionary().record(m.entity).raw == "UQ AU"),
        "the expansion mention should now also resolve to the abbreviation entity"
    );
}
